(* Tests for the report library: ASCII tables, CSV, gnuplot emission
   and paper-vs-measured comparison records. *)

open Testutil

let test_table_render () =
  let t = Report.Table.create ~header:[ "name"; "value" ] () in
  Report.Table.add_row t [ "alpha"; "1" ];
  Report.Table.add_row t [ "b"; "22" ];
  let rendered = Report.Table.render t in
  let lines = String.split_on_char '\n' rendered in
  (* header + separator + 2 rows + trailing newline split artifact *)
  Alcotest.(check int) "line count" 5 (List.length lines);
  (* Right alignment: "value" column is 5 wide, so "1" is padded. *)
  Alcotest.(check bool) "alignment" true
    (String.length (List.nth lines 2) = String.length (List.nth lines 0));
  Alcotest.(check bool) "separator dashes" true
    (String.for_all (fun c -> c = '-') (List.nth lines 1))

let test_table_left_align () =
  let t =
    Report.Table.create
      ~aligns:[ Report.Table.Left; Report.Table.Right ]
      ~header:[ "key"; "v" ] ()
  in
  Report.Table.add_row t [ "a"; "1" ];
  let lines = String.split_on_char '\n' (Report.Table.render t) in
  Alcotest.(check bool) "left-aligned cell" true
    (String.length (List.nth lines 2) > 0
    && (List.nth lines 2).[0] = 'a')

let test_table_float_rows () =
  let t = Report.Table.create ~header:[ "x"; "y" ] () in
  Report.Table.add_float_row t [ 1.5; nan ];
  let rendered = Report.Table.render t in
  Alcotest.(check bool) "NaN renders as dash" true
    (String.length rendered > 0
    && String.index_opt rendered '-' <> None);
  Alcotest.(check bool) "value rendered" true
    (Astring_contains.contains rendered "1.5")

let test_table_markdown () =
  let t = Report.Table.create ~header:[ "k"; "v" ] () in
  Report.Table.add_row t [ "a|b"; "1" ];
  let md = Report.Table.render_markdown t in
  Alcotest.(check bool) "header row" true
    (Astring_contains.contains md "| k | v |");
  Alcotest.(check bool) "alignment row" true
    (Astring_contains.contains md "| ---: | ---: |");
  Alcotest.(check bool) "pipe escaped" true
    (Astring_contains.contains md "a\\|b")

let test_table_errors () =
  check_raises_invalid "empty header" (fun () ->
      Report.Table.create ~header:[] ());
  let t = Report.Table.create ~header:[ "a"; "b" ] () in
  check_raises_invalid "row width mismatch" (fun () ->
      Report.Table.add_row t [ "only one" ]);
  check_raises_invalid "aligns mismatch" (fun () ->
      Report.Table.create ~aligns:[ Report.Table.Left ] ~header:[ "a"; "b" ] ())

(* ------------------------------------------------------------------ *)
(* CSV                                                                 *)

let test_csv_escaping () =
  Alcotest.(check string) "plain" "abc" (Report.Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Report.Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Report.Csv.escape "a\"b");
  Alcotest.(check string) "newline" "\"a\nb\"" (Report.Csv.escape "a\nb");
  Alcotest.(check string) "row" "a,\"b,c\",d"
    (Report.Csv.row_to_string [ "a"; "b,c"; "d" ])

let test_csv_document () =
  let doc =
    Report.Csv.to_string ~header:[ "x"; "y" ]
      ~rows:[ [ "1"; "2" ]; [ "3"; "4" ] ]
  in
  Alcotest.(check string) "document" "x,y\n1,2\n3,4\n" doc

let test_csv_float_rows () =
  let doc =
    Report.Csv.of_float_rows ~header:[ "x"; "y" ]
      ~rows:[ [| 1.; nan |]; [| 0.5; 2. |] ]
  in
  let lines = String.split_on_char '\n' doc in
  Alcotest.(check string) "NaN becomes empty" "1," (List.nth lines 1);
  Alcotest.(check bool) "roundtrip precision" true
    (Astring_contains.contains (List.nth lines 2) "0.5")

let test_csv_write_file () =
  let path = Filename.temp_file "rexspeed" ".csv" in
  Report.Csv.write_file ~path "a,b\n";
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "file contents" "a,b" line

(* ------------------------------------------------------------------ *)
(* Gnuplot                                                             *)

let test_gnuplot_data_block () =
  let block =
    Report.Gnuplot.data_block ~comment:"test" ~columns:[ "x"; "y" ]
      ~rows:[ [| 1.; 2. |]; [| 3.; nan |] ]
      ()
  in
  let lines = String.split_on_char '\n' block in
  Alcotest.(check string) "comment line" "# test" (List.nth lines 0);
  Alcotest.(check string) "header line" "# x y" (List.nth lines 1);
  Alcotest.(check string) "data line" "1 2" (List.nth lines 2);
  Alcotest.(check string) "missing marker" "3 ?" (List.nth lines 3)

let test_gnuplot_script () =
  let script =
    Report.Gnuplot.script ~output:"out.png" ~title:"T" ~xlabel:"x"
      ~ylabel:"y" ~logx:true ~data_file:"d.dat"
      ~series:[ (2, "two"); (5, "one") ]
      ()
  in
  Alcotest.(check bool) "logscale present" true
    (Astring_contains.contains script "set logscale x");
  Alcotest.(check bool) "both series plotted" true
    (Astring_contains.contains script "using 1:2"
    && Astring_contains.contains script "using 1:5");
  Alcotest.(check bool) "missing marker configured" true
    (Astring_contains.contains script "set datafile missing")

(* ------------------------------------------------------------------ *)
(* Chart                                                               *)

let test_chart_basic () =
  let rendered =
    Report.Chart.render ~width:40 ~height:8 ~title:"demo"
      [
        {
          Report.Chart.label = "linear";
          points = [ (0., 0.); (1., 1.); (2., 2.) ];
          glyph = '*';
        };
      ]
  in
  Alcotest.(check bool) "title" true (Astring_contains.contains rendered "demo");
  Alcotest.(check bool) "glyph plotted" true
    (Astring_contains.contains rendered "*");
  Alcotest.(check bool) "legend" true
    (Astring_contains.contains rendered "* = linear");
  Alcotest.(check bool) "y max annotated" true
    (Astring_contains.contains rendered "2");
  (* Deterministic: same input, same output. *)
  let again =
    Report.Chart.render ~width:40 ~height:8 ~title:"demo"
      [
        {
          Report.Chart.label = "linear";
          points = [ (0., 0.); (1., 1.); (2., 2.) ];
          glyph = '*';
        };
      ]
  in
  Alcotest.(check string) "deterministic" rendered again

let test_chart_two_series_and_nan () =
  let rendered =
    Report.Chart.render ~width:40 ~height:8 ~title:"two"
      [
        { Report.Chart.label = "a"; points = [ (0., 1.); (1., nan); (2., 3.) ]; glyph = 'a' };
        { Report.Chart.label = "b"; points = [ (0., 2.); (2., 1.) ]; glyph = 'b' };
      ]
  in
  Alcotest.(check bool) "both legends" true
    (Astring_contains.contains rendered "a = a"
    && Astring_contains.contains rendered "b = b")

let test_chart_empty_and_degenerate () =
  let empty = Report.Chart.render ~title:"none" [] in
  Alcotest.(check bool) "placeholder" true
    (Astring_contains.contains empty "(no data)");
  (* Constant series: y span degenerates but must not crash. *)
  let flat =
    Report.Chart.render ~width:30 ~height:5 ~title:"flat"
      [ { Report.Chart.label = "f"; points = [ (0., 1.); (1., 1.) ]; glyph = '#' } ]
  in
  Alcotest.(check bool) "flat plotted" true
    (Astring_contains.contains flat "#");
  (match Report.Chart.render ~width:4 ~title:"w" [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "narrow width must raise")

let test_chart_logx_drops_nonpositive () =
  let rendered =
    Report.Chart.render ~width:40 ~height:6 ~logx:true ~title:"log"
      [
        {
          Report.Chart.label = "l";
          points = [ (0., 5.); (1e-6, 1.); (1e-2, 2.) ];
          glyph = '@';
        };
      ]
  in
  (* The x annotations must span the positive points only. *)
  Alcotest.(check bool) "axis from 1e-06" true
    (Astring_contains.contains rendered "1e-06");
  Alcotest.(check bool) "axis to 0.01" true
    (Astring_contains.contains rendered "0.01")

(* ------------------------------------------------------------------ *)
(* Compare                                                             *)

let test_compare_numeric () =
  let e =
    Report.Compare.numeric ~experiment:"t" ~metric:"m" ~paper:2764.
      ~measured:2764.3 ()
  in
  Alcotest.(check bool) "within printed rounding" true
    (e.Report.Compare.verdict = Report.Compare.Exact);
  let e2 =
    Report.Compare.numeric ~experiment:"t" ~metric:"m" ~paper:2764.
      ~measured:2900. ()
  in
  (match e2.Report.Compare.verdict with
  | Report.Compare.Deviates _ -> ()
  | Report.Compare.Exact | Report.Compare.Shape _ ->
      Alcotest.fail "5% off must deviate");
  Alcotest.(check bool) "all_ok flags deviations" false
    (Report.Compare.all_ok [ e; e2 ]);
  Alcotest.(check bool) "all_ok accepts shapes" true
    (Report.Compare.all_ok
       [
         e;
         Report.Compare.entry ~experiment:"x" ~metric:"m" ~paper:"p"
           ~measured:"m" ~verdict:(Report.Compare.Shape "ok");
       ])

let test_compare_markdown () =
  let entries =
    [
      Report.Compare.entry ~experiment:"Fig 2" ~metric:"saving"
        ~paper:"35%" ~measured:"33%"
        ~verdict:(Report.Compare.Shape "band");
    ]
  in
  let md = Report.Compare.render_markdown entries in
  Alcotest.(check bool) "markdown table" true
    (Astring_contains.contains md "| Fig 2 | saving | 35% | 33% |")

let () =
  Alcotest.run "report"
    [
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "left align" `Quick test_table_left_align;
          Alcotest.test_case "float rows" `Quick test_table_float_rows;
          Alcotest.test_case "errors" `Quick test_table_errors;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escaping" `Quick test_csv_escaping;
          Alcotest.test_case "document" `Quick test_csv_document;
          Alcotest.test_case "float rows" `Quick test_csv_float_rows;
          Alcotest.test_case "write file" `Quick test_csv_write_file;
        ] );
      ( "gnuplot",
        [
          Alcotest.test_case "data block" `Quick test_gnuplot_data_block;
          Alcotest.test_case "script" `Quick test_gnuplot_script;
        ] );
      ( "chart",
        [
          Alcotest.test_case "basics" `Quick test_chart_basic;
          Alcotest.test_case "two series and NaN" `Quick
            test_chart_two_series_and_nan;
          Alcotest.test_case "empty and degenerate" `Quick
            test_chart_empty_and_degenerate;
          Alcotest.test_case "logx" `Quick test_chart_logx_drops_nonpositive;
        ] );
      ( "compare",
        [
          Alcotest.test_case "numeric verdicts" `Quick test_compare_numeric;
          Alcotest.test_case "markdown" `Quick test_compare_markdown;
          Alcotest.test_case "table markdown" `Quick test_table_markdown;
        ] );
    ]
