(* Energy/performance frontier planner.

   The scenario the paper's introduction motivates: an operator must
   pick a slowdown budget rho for a divisible workload. This example
   sweeps rho for every platform/processor configuration and prints the
   frontier — which speed pair wins, the checkpointing period, the
   energy bill, and what the second speed buys over the single-speed
   policy — so the operator can see where relaxing the deadline stops
   paying. *)

let frontier config =
  let env = Core.Env.of_config config in
  let min_rho = Core.Bicrit.min_feasible_rho env in
  Printf.printf "\n=== %s (min feasible rho: %.3f) ===\n"
    (Platforms.Config.name config)
    min_rho;
  let table =
    Report.Table.create
      ~header:
        [ "rho"; "sigma1"; "sigma2"; "Wopt"; "E/W (mW)"; "saving vs 1-speed" ]
      ()
  in
  let rhos = [ 1.2; 1.4; 1.775; 2.; 2.5; 3.; 4.; 6.; 8. ] in
  List.iter
    (fun rho ->
      match Core.Bicrit.solve env ~rho with
      | None ->
          Report.Table.add_row table
            [ Printf.sprintf "%g" rho; "-"; "-"; "-"; "-"; "-" ]
      | Some { best; _ } ->
          let saving =
            match Core.Bicrit.energy_saving_vs_single env ~rho with
            | Some s -> Printf.sprintf "%.1f%%" (100. *. s)
            | None -> "-"
          in
          Report.Table.add_row table
            [
              Printf.sprintf "%g" rho;
              Printf.sprintf "%g" best.Core.Optimum.sigma1;
              Printf.sprintf "%g" best.sigma2;
              Printf.sprintf "%.0f" best.w_opt;
              Printf.sprintf "%.1f" best.energy_overhead;
              saving;
            ])
    rhos;
  Report.Table.print table

let () =
  print_endline
    "BiCrit frontier: energy-optimal pattern per slowdown budget rho";
  List.iter frontier Platforms.Config.all;
  print_newline ();
  (* Where does the second speed help the most? Scan rho finely on one
     configuration and report the peak. *)
  let env =
    Core.Env.of_config (Option.get (Platforms.Config.find "hera/xscale"))
  in
  let best_rho, best_saving =
    List.fold_left
      (fun (br, bs) rho ->
        match Core.Bicrit.energy_saving_vs_single env ~rho with
        | Some s when s > bs -> (rho, s)
        | Some _ | None -> (br, bs))
      (nan, 0.)
      (Numerics.Axis.linspace ~lo:1.05 ~hi:8. ~n:140)
  in
  Printf.printf
    "largest two-speed saving on Hera/XScale: %.1f%% at rho = %.2f\n"
    (100. *. best_saving) best_rho
