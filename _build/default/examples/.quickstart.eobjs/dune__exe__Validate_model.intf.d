examples/validate_model.mli:
