examples/twice_faster.mli:
