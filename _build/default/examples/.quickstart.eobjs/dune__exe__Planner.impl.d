examples/planner.ml: Core List Numerics Option Platforms Printf Report
