examples/scaling.ml: Array Core List Numerics Option Platforms Printf Prng Report Sim
