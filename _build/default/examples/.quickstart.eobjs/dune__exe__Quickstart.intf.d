examples/quickstart.mli:
