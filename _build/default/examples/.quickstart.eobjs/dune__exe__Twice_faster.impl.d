examples/twice_faster.ml: Core Experiments List Numerics Printf Report Sim
