examples/validate_model.ml: Core Experiments Format List Printf Prng Sim
