examples/scaling.mli:
