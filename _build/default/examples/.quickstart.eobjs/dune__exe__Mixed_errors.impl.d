examples/mixed_errors.ml: Array Core Experiments List Numerics Option Platforms Printf Sim
