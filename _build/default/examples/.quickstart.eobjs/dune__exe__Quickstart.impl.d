examples/quickstart.ml: Core Format List Option Platforms Printf
