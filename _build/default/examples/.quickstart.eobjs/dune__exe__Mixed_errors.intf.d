examples/mixed_errors.mli:
