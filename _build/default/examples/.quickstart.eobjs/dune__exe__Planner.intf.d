examples/planner.mli:
