(* Quickstart: size the checkpointing pattern of a 30-day divisible job
   on Hera with XScale-style DVFS, under a 3x slowdown budget.

   Shows the three steps every user of the library takes:
   1. build an environment (platform x processor, or custom numbers);
   2. solve BiCrit for the optimal speed pair and pattern size;
   3. read off application-level predictions (makespan, energy). *)

let () =
  (* Step 1: the environment. [Platforms] ships the paper's data; a
     custom machine would use Core.Params.make / Core.Power.make /
     Core.Env.make directly. *)
  let config = Option.get (Platforms.Config.find "hera/xscale") in
  let env = Core.Env.of_config config in
  Format.printf "environment:@.  %a@.@." Core.Env.pp env;

  (* Step 2: solve for the energy-optimal pattern under rho = 3 (the
     application may take at most 3 seconds per unit of work in
     expectation). *)
  let rho = 3. in
  let { Core.Bicrit.best; candidates } =
    Option.get (Core.Bicrit.solve env ~rho)
  in
  Format.printf "solved %d feasible speed pairs; optimum:@.  %a@.@."
    (List.length candidates) Core.Optimum.pp_solution best;

  (* Step 3: application-level predictions. Work units are
     seconds-at-unit-speed; a 30-day compute job at full speed is
     2,592,000 units. *)
  let w_base = 30. *. 24. *. 3600. in
  let makespan =
    Core.Exact.total_makespan env.params ~w:best.w_opt ~sigma1:best.sigma1
      ~sigma2:best.sigma2 ~w_base
  in
  let energy =
    Core.Exact.total_energy env.params env.power ~w:best.w_opt
      ~sigma1:best.sigma1 ~sigma2:best.sigma2 ~w_base
  in
  Printf.printf
    "30-day job: expected makespan %.1f days, expected energy %.3g kJ\n"
    (makespan /. 86400.)
    (energy /. 1e6);

  (* Beyond expectations: the full makespan law gives tail-risk
     numbers for deadline planning. *)
  let distribution =
    Core.Distribution.make env.params ~w:best.w_opt ~sigma1:best.sigma1
      ~sigma2:best.sigma2
  in
  let makespan = Core.Makespan.make distribution ~w_base in
  Printf.printf
    "makespan p50 %.2f / p99 %.2f days; P(missing an 82-day deadline) = %.2e\n"
    (Core.Makespan.quantile makespan 0.5 /. 86400.)
    (Core.Makespan.quantile makespan 0.99 /. 86400.)
    (Core.Makespan.tail_probability makespan ~deadline:(82. *. 86400.));

  (* The first-order pattern is near-optimal for the exact model: *)
  let exact_time, exact_energy = Core.Optimum.exact_overheads env.params env.power best in
  Printf.printf
    "exact overheads at Wopt: time %.4f (bound %.1f), energy %.2f (first-order said %.2f)\n"
    exact_time rho exact_energy best.energy_overhead;

  (* And the headline of the paper: how much does the freedom to
     re-execute at a different speed save here? *)
  match Core.Bicrit.energy_saving_vs_single env ~rho with
  | Some saving ->
      Printf.printf "two-speed saving vs single speed at rho=%g: %.1f%%\n" rho
        (100. *. saving)
  | None -> print_endline "problem infeasible"
