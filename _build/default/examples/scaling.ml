(* Platform scaling: why exascale needs this model at all.

   The paper's motivation is that error rates grow with machine size:
   a platform of N nodes has N times the per-node error rate. This
   example scales a platform from 64 to 16384 nodes, recomputing at
   each size:

   - the aggregate MTBF (shrinking linearly),
   - the BiCrit-optimal pattern and speed pair (shorter patterns,
     eventually faster speeds),
   - the achievable energy overhead and the two-speed saving,

   and cross-checks one size against the explicit multi-node simulator
   (per-node Poisson errors, event-queue semantics) to show the
   aggregate abstraction is exact in expectation. *)

let () =
  (* Per-node rate chosen so that 1024 nodes reproduce Hera's
     platform-level rate of 3.38e-6 errors/s. *)
  let node_lambda = 3.38e-6 /. 1024. in
  let base =
    Core.Env.of_config (Option.get (Platforms.Config.find "hera/xscale"))
  in
  let rho = 3. in
  print_endline "weak scaling of the BiCrit optimum (Hera-like, rho = 3)\n";
  let table =
    Report.Table.create
      ~header:
        [ "nodes"; "MTBF (h)"; "sigma1"; "sigma2"; "Wopt"; "E/W (mW)";
          "saving" ]
      ()
  in
  List.iter
    (fun nodes ->
      let lambda = float_of_int nodes *. node_lambda in
      let env = Core.Env.with_lambda base lambda in
      let mtbf_hours = 1. /. lambda /. 3600. in
      match Core.Bicrit.solve env ~rho with
      | None ->
          Report.Table.add_row table
            [ string_of_int nodes; Printf.sprintf "%.1f" mtbf_hours;
              "-"; "-"; "-"; "-"; "-" ]
      | Some { best; _ } ->
          let saving =
            match Core.Bicrit.energy_saving_vs_single env ~rho with
            | Some s -> Printf.sprintf "%.1f%%" (100. *. s)
            | None -> "-"
          in
          Report.Table.add_row table
            [
              string_of_int nodes;
              Printf.sprintf "%.1f" mtbf_hours;
              Printf.sprintf "%g" best.Core.Optimum.sigma1;
              Printf.sprintf "%g" best.sigma2;
              Printf.sprintf "%.0f" best.w_opt;
              Printf.sprintf "%.1f" best.energy_overhead;
              saving;
            ])
    [ 64; 256; 1024; 4096; 16384; 65536 ];
  Report.Table.print table;

  (* Cross-check at 1024 nodes: explicit per-node simulation vs the
     aggregate closed form. *)
  print_endline
    "\ncross-check at 1024 nodes (per-node Poisson errors, event queue):";
  let nodes = 1024 in
  let platform =
    Sim.Platform_sim.make ~nodes ~node_lambda_f:0.
      ~node_lambda_s:(node_lambda *. 50.) (* inflated so errors show up *)
      ~c:300. ~v:15.4 ()
  in
  let model = Sim.Platform_sim.aggregate_model platform in
  let w = 2764. and sigma1 = 0.4 and sigma2 = 0.4 in
  let expected = Core.Mixed.expected_time model ~w ~sigma1 ~sigma2 in
  let replicas = 2000 in
  let rngs = Prng.Rng.split (Prng.Rng.create ~seed:2016) replicas in
  let samples =
    Array.map
      (fun rng ->
        let machine = Sim.Machine.create base.power in
        let o =
          Sim.Platform_sim.run_pattern platform ~machine ~rng ~w ~sigma1
            ~sigma2 ()
        in
        o.Sim.Platform_sim.time)
      rngs
  in
  let s = Numerics.Stats.summarize samples in
  Printf.printf
    "aggregate model: %.1f s/pattern; 1024-node simulation: %.1f +/- %.1f \
     s/pattern (%d replicas; model inside the 99%% CI: %b)\n"
    expected s.Numerics.Stats.mean s.Numerics.Stats.std_error replicas
    (Numerics.Stats.within_confidence ~expected samples)
