let two_speed_wopt (p : Series.point) =
  Option.map (fun (s : Core.Optimum.solution) -> s.w_opt) p.two_speed

let two_speed_energy (p : Series.point) =
  Option.map (fun (s : Core.Optimum.solution) -> s.energy_overhead) p.two_speed

let two_speed_sigma1 (p : Series.point) =
  Option.map (fun (s : Core.Optimum.solution) -> s.sigma1) p.two_speed

let two_speed_sigma2 (p : Series.point) =
  Option.map (fun (s : Core.Optimum.solution) -> s.sigma2) p.two_speed

let single_speed_energy (p : Series.point) =
  Option.map
    (fun (s : Core.Optimum.solution) -> s.energy_overhead)
    p.single_speed

let single_speed_wopt (p : Series.point) =
  Option.map (fun (s : Core.Optimum.solution) -> s.w_opt) p.single_speed

let project (t : Series.t) f =
  List.filter_map
    (fun (p : Series.point) -> Option.map (fun v -> (p.Series.x, v)) (f p))
    t.points

let nondecreasing ?(rtol = 1e-9) pts =
  let rec go running_max = function
    | [] -> true
    | (_, v) :: rest ->
        v >= running_max -. (rtol *. Float.abs running_max)
        && go (Float.max running_max v) rest
  in
  match pts with [] -> true | (_, v) :: rest -> go v rest

let nonincreasing ?rtol pts =
  nondecreasing ?rtol (List.map (fun (x, v) -> (x, -.v)) pts)

let shared a b =
  List.filter_map
    (fun (x, va) ->
      Option.map (fun (_, vb) -> (x, va, vb)) (List.find_opt (fun (xb, _) -> xb = x) b))
    a

let never_above a b =
  List.for_all
    (fun (_, va, vb) -> va <= vb +. (1e-9 *. Float.abs vb))
    (shared a b)

let step_values pts =
  let rec go acc = function
    | [] -> List.rev acc
    | (_, v) :: rest -> begin
        match acc with
        | prev :: _ when Numerics.Float_utils.approx_equal prev v ->
            go acc rest
        | [] | _ :: _ -> go (v :: acc) rest
      end
  in
  go [] pts

let max_gap_ratio cheap expensive =
  List.fold_left
    (fun acc (_, c, e) -> if e > 0. then Float.max acc ((e -. c) /. e) else acc)
    0.
    (shared cheap expensive)
