(** One sweep = one panel row of a paper figure.

    For each sample of the swept parameter, the BiCrit problem is
    solved twice: with a free re-execution speed (the paper's
    proposal) and with the single-speed restriction (the dotted
    baseline curves). Each point carries both solutions, so the three
    paper panels — speeds, optimal pattern size, energy overhead —
    are projections of one series. *)

type point = {
  x : float;  (** Value of the swept parameter. *)
  two_speed : Core.Optimum.solution option;  (** None = infeasible. *)
  single_speed : Core.Optimum.solution option;
}

type t = {
  parameter : Parameter.t;
  label : string;  (** Configuration name, e.g. "Atlas/Crusoe". *)
  rho : float;  (** Performance bound in force (except for Rho sweeps). *)
  points : point list;
}

val run :
  ?label:string -> env:Core.Env.t -> rho:float -> parameter:Parameter.t ->
  xs:float list -> unit -> t
(** Solve BiCrit along the axis. [rho] is the bound used for every
    non-[Rho] parameter (the paper's default is 3). *)

val saving : point -> float option
(** Relative energy saving of two speeds over one at this point,
    [(E1 - E2) / E1]; [None] if either problem is infeasible. *)

val max_saving : t -> float
(** Largest saving along the series (0. if never feasible) — the
    paper's "up to 35%" summary statistic. *)

val feasible_fraction : t -> float
(** Fraction of points where the two-speed problem is feasible. *)

val speeds_distinct_fraction : t -> float
(** Fraction of feasible points where the optimal pair uses two
    genuinely different speeds. *)

val column_names : string list
(** Header for {!to_rows}: x, s1, s2, Wopt, E/W, T/W, then the
    single-speed s, Wopt, E/W (NaN when infeasible). *)

val to_rows : t -> float array list
(** Numeric rows (one per point) matching {!column_names}. *)
