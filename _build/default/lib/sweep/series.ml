type point = {
  x : float;
  two_speed : Core.Optimum.solution option;
  single_speed : Core.Optimum.solution option;
}

type t = {
  parameter : Parameter.t;
  label : string;
  rho : float;
  points : point list;
}

let solve_point ~env ~rho ~parameter x =
  let env, rho = Parameter.apply parameter ~env ~rho x in
  let best mode =
    Option.map
      (fun (r : Core.Bicrit.result) -> r.best)
      (Core.Bicrit.solve ~mode env ~rho)
  in
  {
    x;
    two_speed = best Core.Bicrit.Two_speeds;
    single_speed = best Core.Bicrit.Single_speed;
  }

let run ?(label = "") ~env ~rho ~parameter ~xs () =
  {
    parameter;
    label;
    rho;
    points = List.map (solve_point ~env ~rho ~parameter) xs;
  }

let saving point =
  match (point.two_speed, point.single_speed) with
  | Some two, Some one ->
      let e1 = one.Core.Optimum.energy_overhead in
      Some ((e1 -. two.Core.Optimum.energy_overhead) /. e1)
  | None, _ | _, None -> None

let max_saving t =
  List.fold_left
    (fun acc p ->
      match saving p with Some s -> Float.max acc s | None -> acc)
    0. t.points

let feasible_fraction t =
  match t.points with
  | [] -> 0.
  | points ->
      let feasible =
        List.length (List.filter (fun p -> p.two_speed <> None) points)
      in
      float_of_int feasible /. float_of_int (List.length points)

let speeds_distinct_fraction t =
  let feasible, distinct =
    List.fold_left
      (fun (f, d) p ->
        match p.two_speed with
        | None -> (f, d)
        | Some s ->
            ( f + 1,
              if s.Core.Optimum.sigma1 <> s.Core.Optimum.sigma2 then d + 1
              else d ))
      (0, 0) t.points
  in
  if feasible = 0 then 0. else float_of_int distinct /. float_of_int feasible

let column_names =
  [ "x"; "sigma1"; "sigma2"; "w_opt"; "energy"; "time";
    "single_sigma"; "single_w_opt"; "single_energy" ]

let to_rows t =
  let of_solution = function
    | Some (s : Core.Optimum.solution) ->
        (s.sigma1, s.sigma2, s.w_opt, s.energy_overhead, s.time_overhead)
    | None -> (nan, nan, nan, nan, nan)
  in
  List.map
    (fun p ->
      let s1, s2, w, e, tm = of_solution p.two_speed in
      let u1, _, uw, ue, _ = of_solution p.single_speed in
      [| p.x; s1; s2; w; e; tm; u1; uw; ue |])
    t.points
