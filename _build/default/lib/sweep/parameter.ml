type t = C | V | Lambda | Rho | P_idle | P_io

let all = [ C; V; Lambda; Rho; P_idle; P_io ]

let name = function
  | C -> "C"
  | V -> "V"
  | Lambda -> "lambda"
  | Rho -> "rho"
  | P_idle -> "Pidle"
  | P_io -> "Pio"

let unit_label = function
  | C | V -> "s"
  | Lambda -> "/s"
  | Rho -> ""
  | P_idle | P_io -> "mW"

let of_string s =
  let s = String.lowercase_ascii s in
  List.find_opt (fun p -> String.lowercase_ascii (name p) = s) all

let apply p ~env ~rho x =
  match p with
  | C -> (Core.Env.with_c env x, rho)
  | V -> (Core.Env.with_v env x, rho)
  | Lambda -> (Core.Env.with_lambda env x, rho)
  | Rho -> (env, x)
  | P_idle -> (Core.Env.with_p_idle env x, rho)
  | P_io -> (Core.Env.with_p_io env x, rho)

let paper_axis p ?(lambda_hi = 1e-2) ?points () =
  match p with
  | C | V ->
      (* Start at a small positive value: C = V = 0 simultaneously is a
         degenerate pattern (We = 0). *)
      let n = Option.value points ~default:101 in
      1. :: List.tl (Numerics.Axis.linspace ~lo:0. ~hi:5000. ~n)
  | P_idle | P_io ->
      let n = Option.value points ~default:101 in
      Numerics.Axis.linspace ~lo:0. ~hi:5000. ~n
  | Rho ->
      let n = Option.value points ~default:101 in
      Numerics.Axis.linspace ~lo:1. ~hi:3.5 ~n
  | Lambda ->
      let n = Option.value points ~default:81 in
      Numerics.Axis.logspace ~lo:1e-6 ~hi:lambda_hi ~n
