(** Locating the switch points of figure sweeps.

    The paper's speed panels are staircases: "the optimal pair starts
    at (0.45, 0.45) and reaches (0.45, 0.8) when C is increased to
    5000 s". This module finds *where* each step happens, by scanning a
    grid and bisecting every change of the projected optimum down to a
    tolerance — turning the figures' qualitative staircases into
    precise switch coordinates. *)

type boundary = {
  lower : float;  (** Largest axis value still showing [before]. *)
  upper : float;  (** Smallest axis value already showing [after]. *)
  before : float option;  (** Projected value left of the switch
                              ([None] = infeasible). *)
  after : float option;  (** Projected value right of the switch. *)
}

val scan :
  ?grid:int -> ?tol:float -> f:(float -> float option) -> lo:float ->
  hi:float -> unit -> boundary list
(** [scan ~f ~lo ~hi ()] samples [f] on [grid] points (default 64) and
    bisects each adjacent change until [upper - lower <= tol] (default
    1e-6 relative to the axis width). Values are compared with a 1e-9
    relative tolerance. Boundaries are returned in axis order.
    @raise Invalid_argument if [lo >= hi] or [grid < 2]. *)

val optimal_sigma1 :
  Core.Env.t -> rho:float -> Parameter.t -> float -> float option
(** Projection: the two-speed optimal first speed at axis value [x]. *)

val optimal_sigma2 :
  Core.Env.t -> rho:float -> Parameter.t -> float -> float option
(** Projection: the optimal re-execution speed at axis value [x]. *)

val speed_switches :
  ?grid:int -> ?tol:float -> Core.Env.t -> rho:float -> Parameter.t ->
  lo:float -> hi:float -> (boundary list * boundary list)
(** [(sigma1 switches, sigma2 switches)] of a figure panel. *)
