(** The six swept parameters of the paper's figures.

    Every figure panel varies exactly one of: checkpoint time C,
    verification time V, error rate lambda, performance bound rho,
    idle power Pidle, or I/O power Pio — holding the rest at the
    configuration defaults. *)

type t = C | V | Lambda | Rho | P_idle | P_io

val all : t list
(** In the paper's panel order: C, V, lambda, rho, Pidle, Pio. *)

val name : t -> string
(** Short axis label: "C", "V", "lambda", "rho", "Pidle", "Pio". *)

val unit_label : t -> string
(** "s" for times, "/s" for the rate, "mW" for powers, "" for rho. *)

val of_string : string -> t option
(** Case-insensitive parse of {!name}. *)

val apply : t -> env:Core.Env.t -> rho:float -> float -> Core.Env.t * float
(** [apply p ~env ~rho x] sets parameter [p] to [x], returning the
    updated environment and bound. Setting C keeps R = C (the paper's
    convention). *)

val paper_axis : t -> ?lambda_hi:float -> ?points:int -> unit -> float list
(** The grid the paper plots: [0, 5000] linear for C, V, Pidle and Pio
    (C and V start slightly above zero since a zero checkpoint is
    degenerate), [1, 3.5] for rho, and [1e-6, lambda_hi] logarithmic
    for lambda ([lambda_hi] defaults to 1e-2; the Coastal figures stop
    at 1e-3). [points] defaults to 101 (81 for lambda). *)
