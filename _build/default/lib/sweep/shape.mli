(** Qualitative shape checks on sweep series.

    The reproduction criterion for the paper's figures is shape, not
    absolute pixels: who wins, what grows, where speeds switch. These
    helpers extract projections of a {!Series.t} and test the
    monotonicity/step properties the paper describes in Section 4.3. *)

val two_speed_wopt : Series.point -> float option
val two_speed_energy : Series.point -> float option
val two_speed_sigma1 : Series.point -> float option
val two_speed_sigma2 : Series.point -> float option
val single_speed_energy : Series.point -> float option
val single_speed_wopt : Series.point -> float option

val project : Series.t -> (Series.point -> float option) -> (float * float) list
(** Feasible [(x, value)] pairs along the series. *)

val nondecreasing : ?rtol:float -> (float * float) list -> bool
(** Values never drop by more than [rtol] (default 1e-9) relative to
    the running maximum — tolerant of float noise and of the staircase
    plateaus the discrete speed set produces. *)

val nonincreasing : ?rtol:float -> (float * float) list -> bool

val never_above : (float * float) list -> (float * float) list -> bool
(** [never_above a b]: at every x the two series share, a's value is
    <= b's value (within 1e-9 relative). Used for "two speeds never
    lose to one speed". *)

val step_values : (float * float) list -> float list
(** Distinct consecutive values (plateau compression) — e.g. the
    sequence of optimal speeds along an axis, for "the pair moves from
    (0.45,0.45) to (0.45,0.8)" claims. *)

val max_gap_ratio : (float * float) list -> (float * float) list -> float
(** [max_gap_ratio cheap expensive] is the maximum over shared xs of
    [(expensive - cheap) / expensive] — the "saves up to N%" statistic
    between two energy curves. 0. when no xs are shared. *)
