type boundary = {
  lower : float;
  upper : float;
  before : float option;
  after : float option;
}

let same_value a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> Numerics.Float_utils.approx_equal x y
  | None, Some _ | Some _, None -> false

let scan ?(grid = 64) ?tol ~f ~lo ~hi () =
  if lo >= hi then invalid_arg "Crossover.scan: empty axis";
  if grid < 2 then invalid_arg "Crossover.scan: need at least two samples";
  let tol =
    match tol with Some t -> t | None -> 1e-6 *. (hi -. lo)
  in
  let rec bisect x_lo v_lo x_hi v_hi =
    if x_hi -. x_lo <= tol then
      { lower = x_lo; upper = x_hi; before = v_lo; after = v_hi }
    else
      let mid = 0.5 *. (x_lo +. x_hi) in
      let v_mid = f mid in
      if same_value v_lo v_mid then bisect mid v_mid x_hi v_hi
      else bisect x_lo v_lo mid v_mid
  in
  (* Scan the coarse grid; each adjacent change yields one refined
     boundary (changes finer than the grid are merged into it). *)
  let xs = Numerics.Axis.linspace ~lo ~hi ~n:grid in
  let values = List.map (fun x -> (x, f x)) xs in
  let rec walk acc = function
    | [] | [ _ ] -> List.rev acc
    | (x1, v1) :: ((x2, v2) :: _ as rest) ->
        if same_value v1 v2 then walk acc rest
        else walk (bisect x1 v1 x2 v2 :: acc) rest
  in
  walk [] values

let project env ~rho parameter which x =
  let env, rho = Parameter.apply parameter ~env ~rho x in
  match Core.Bicrit.solve env ~rho with
  | None -> None
  | Some { best; _ } -> begin
      match which with
      | `Sigma1 -> Some best.Core.Optimum.sigma1
      | `Sigma2 -> Some best.Core.Optimum.sigma2
    end

let optimal_sigma1 env ~rho parameter x = project env ~rho parameter `Sigma1 x
let optimal_sigma2 env ~rho parameter x = project env ~rho parameter `Sigma2 x

let speed_switches ?grid ?tol env ~rho parameter ~lo ~hi =
  ( scan ?grid ?tol ~f:(optimal_sigma1 env ~rho parameter) ~lo ~hi (),
    scan ?grid ?tol ~f:(optimal_sigma2 env ~rho parameter) ~lo ~hi () )
