lib/sweep/frontier.ml: Core Float List Numerics Option
