lib/sweep/grid2d.mli: Core Parameter
