lib/sweep/series.mli: Core Parameter
