lib/sweep/series.ml: Core Float List Option Parameter
