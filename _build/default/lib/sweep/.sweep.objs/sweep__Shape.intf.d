lib/sweep/shape.mli: Series
