lib/sweep/parameter.ml: Core List Numerics Option String
