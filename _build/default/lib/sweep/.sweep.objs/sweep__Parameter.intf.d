lib/sweep/parameter.mli: Core
