lib/sweep/crossover.ml: Core List Numerics Parameter
