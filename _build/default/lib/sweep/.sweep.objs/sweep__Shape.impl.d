lib/sweep/shape.ml: Core Float List Numerics Option Series
