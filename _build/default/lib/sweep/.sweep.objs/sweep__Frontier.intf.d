lib/sweep/frontier.mli: Core
