lib/sweep/crossover.mli: Core Parameter
