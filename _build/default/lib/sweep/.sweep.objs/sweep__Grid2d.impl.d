lib/sweep/grid2d.ml: Array Buffer Core Float Int List Option Parameter Printf String
