(** Replicated simulation runs and model-vs-simulation comparison.

    Each replica draws from an independent xoshiro256** subsequence
    (2^128-step jumps), so replicas are statistically independent and
    every experiment is reproducible from its seed. *)

type estimate = {
  time : Numerics.Stats.summary;
  energy : Numerics.Stats.summary;
  re_executions_mean : float;
}

type check = {
  label : string;
  expected : float;  (** Model prediction. *)
  observed : Numerics.Stats.summary;  (** Simulated distribution. *)
  z : float;  (** Standard scores of the discrepancy; 0 when exact. *)
  ok : bool;  (** Expected value inside the wide confidence interval. *)
}

val pattern_estimate :
  replicas:int -> seed:int -> model:Core.Mixed.t -> power:Core.Power.t ->
  w:float -> sigma1:float -> sigma2:float -> estimate
(** Simulate one pattern [replicas] times.
    @raise Invalid_argument if [replicas < 1]. *)

val application_estimate :
  replicas:int -> seed:int -> model:Core.Mixed.t -> power:Core.Power.t ->
  w_base:float -> pattern_w:float -> sigma1:float -> sigma2:float -> estimate
(** Simulate the full divisible application [replicas] times; [time]
    summarizes makespans and [energy] total energies. *)

val check_pattern_time :
  ?z:float -> replicas:int -> seed:int -> model:Core.Mixed.t ->
  power:Core.Power.t -> w:float -> sigma1:float -> sigma2:float -> unit -> check
(** Compare the simulated mean pattern time against
    {!Core.Mixed.expected_time}. [z] (default 3.89, ~1e-4 two-sided)
    sets the acceptance width. *)

val check_pattern_energy :
  ?z:float -> replicas:int -> seed:int -> model:Core.Mixed.t ->
  power:Core.Power.t -> w:float -> sigma1:float -> sigma2:float -> unit -> check
(** Same comparison for {!Core.Mixed.expected_energy}. *)

val check_reexecutions :
  ?z:float -> replicas:int -> seed:int -> model:Core.Mixed.t ->
  power:Core.Power.t -> w:float -> sigma1:float -> sigma2:float -> unit -> check
(** Compare the simulated mean number of re-executions against the
    closed form [(1 - P1) / P2] implied by the recursion — equal to
    {!Core.Exact.expected_reexecutions} when [lambda_f = 0.]. *)

val pp_check : Format.formatter -> check -> unit
