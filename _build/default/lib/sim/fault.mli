(** Fault processes (Section 2.1 error model).

    Two kinds: {!create} builds the paper's Poisson process (silent and
    fail-stop errors arrive exponentially in wall-clock time; by
    memorylessness each execution segment draws its first arrival
    independently), and {!scripted} builds a deterministic process for
    failure-injection tests — each query consumes the next scheduled
    arrival, interpreted as an offset into the queried segment. *)

type t
(** A fault process. Scripted processes are stateful: queries consume
    their schedule. *)

val create : rate:float -> t
(** Poisson process of [rate] errors per second.
    @raise Invalid_argument on negative or non-finite [rate]. A zero
    rate is a process that never fires. *)

val scripted : arrivals:float list -> t
(** Deterministic process: the k-th query (via {!first_arrival} or
    {!strikes_within}) consumes the k-th element as the arrival offset
    of that segment; once the schedule is exhausted the process never
    fires again. @raise Invalid_argument on a negative arrival. *)

val rate : t -> float
(** The Poisson rate. @raise Invalid_argument on a scripted process. *)

val first_arrival : t -> Prng.Rng.t -> float
(** Time to the next fault from the segment start; [infinity] for a
    zero-rate or exhausted process. Consumes one scripted entry. *)

val strikes_within : t -> Prng.Rng.t -> duration:float -> float option
(** [strikes_within t rng ~duration] is [Some arrival_time] (measured
    from the segment start, < duration) if the process fires during a
    segment of length [duration], else [None]. Consumes one scripted
    entry either way.
    @raise Invalid_argument on negative [duration]. *)

val strike_probability : t -> duration:float -> float
(** Closed-form [1 - exp (-rate * duration)], for assertions.
    @raise Invalid_argument on a scripted process or negative duration. *)
