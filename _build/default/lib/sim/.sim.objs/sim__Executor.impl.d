lib/sim/executor.ml: Core Fault Float Machine Trace
