lib/sim/montecarlo.mli: Core Format Numerics
