lib/sim/analysis.ml: Format List Trace
