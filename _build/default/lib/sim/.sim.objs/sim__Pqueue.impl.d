lib/sim/pqueue.ml: Array Float Int List
