lib/sim/machine.mli: Core
