lib/sim/pqueue.mli:
