lib/sim/executor.mli: Core Fault Machine Prng Trace
