lib/sim/platform_sim.mli: Core Machine Prng Trace
