lib/sim/analysis.mli: Format Trace
