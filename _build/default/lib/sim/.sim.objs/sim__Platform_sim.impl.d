lib/sim/platform_sim.ml: Array Core Float List Machine Option Pqueue Prng Trace
