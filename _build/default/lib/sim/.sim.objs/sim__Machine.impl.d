lib/sim/machine.ml: Core Numerics
