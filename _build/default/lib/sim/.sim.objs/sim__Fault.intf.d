lib/sim/fault.mli: Prng
