lib/sim/montecarlo.ml: Array Core Executor Float Format Machine Numerics Prng
