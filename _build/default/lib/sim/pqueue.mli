(** Binary min-heap priority queue.

    The event queue of the multi-node platform simulator: per-node
    error arrivals are pushed as timestamped events and popped in time
    order. Generic over the payload; priorities are floats (event
    times). *)

type 'a t

val create : unit -> 'a t
(** An empty queue. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> priority:float -> 'a -> unit
(** Insert an element. O(log n).
    @raise Invalid_argument on a NaN priority. *)

val peek : 'a t -> (float * 'a) option
(** Smallest-priority element without removing it. O(1). Ties are
    broken by insertion order (earliest first), making event
    processing deterministic. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the smallest-priority element. O(log n). *)

val clear : 'a t -> unit

val of_list : (float * 'a) list -> 'a t
(** Heapify a list. O(n log n). *)

val to_sorted_list : 'a t -> (float * 'a) list
(** Drain the queue in priority order (empties it). *)
