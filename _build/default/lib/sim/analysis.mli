(** Trace analytics: where did the time and energy go?

    Folds a {!Trace.t} into the breakdown resilience papers report:
    productive execution (attempts that ended in a checkpoint), wasted
    execution (attempts killed by an error, including the partial time
    of fail-stop strikes), checkpointing, and recovery. *)

type breakdown = {
  productive : float;
      (** Compute + verification seconds of successful attempts. *)
  wasted : float;
      (** Compute + verification seconds of failed attempts, including
          the partial execution cut short by fail-stop errors. *)
  checkpoint : float;  (** Seconds spent writing checkpoints. *)
  recovery : float;  (** Seconds spent recovering. *)
  completed_work : float;
      (** Work units whose pattern eventually checkpointed. *)
  failed_attempts : int;
  successful_patterns : int;
}

val breakdown : Trace.t -> breakdown
(** Classify every segment of a (well-formed) trace. A trailing
    unfinished attempt (trace truncated mid-pattern) counts as wasted. *)

val total_time : breakdown -> float
(** Sum of the four time buckets. *)

val utilization : breakdown -> float
(** [productive / total_time] — the fraction of wall-clock time doing
    work that survived; 0. for an empty trace. *)

val waste_ratio : breakdown -> float
(** [(wasted + recovery) / total_time] — the resilience overhead paid
    to errors; 0. for an empty trace. *)

val pp : Format.formatter -> breakdown -> unit
