type t =
  | Poisson of float
  | Scripted of float list ref

let create ~rate =
  if not (Float.is_finite rate) || rate < 0. then
    invalid_arg "Fault.create: rate must be a non-negative finite float";
  Poisson rate

let scripted ~arrivals =
  if List.exists (fun a -> a < 0. || Float.is_nan a) arrivals then
    invalid_arg "Fault.scripted: arrivals must be non-negative";
  Scripted (ref arrivals)

let rate = function
  | Poisson rate -> rate
  | Scripted _ -> invalid_arg "Fault.rate: scripted process has no rate"

let pop schedule =
  match !schedule with
  | [] -> infinity
  | arrival :: rest ->
      schedule := rest;
      arrival

let first_arrival t rng =
  match t with
  | Poisson 0. -> infinity
  | Poisson rate -> Prng.Rng.exponential rng ~rate
  | Scripted schedule -> pop schedule

let strikes_within t rng ~duration =
  if duration < 0. then invalid_arg "Fault.strikes_within: negative duration";
  let arrival = first_arrival t rng in
  if arrival < duration then Some arrival else None

let strike_probability t ~duration =
  if duration < 0. then
    invalid_arg "Fault.strike_probability: negative duration";
  match t with
  | Poisson rate -> -.Float.expm1 (-.rate *. duration)
  | Scripted _ ->
      invalid_arg "Fault.strike_probability: scripted process"
