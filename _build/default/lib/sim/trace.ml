type segment =
  | Compute of { speed : float; duration : float; work : float }
  | Verify of { speed : float; duration : float; passed : bool }
  | Checkpoint of { duration : float }
  | Recovery of { duration : float }
  | Fail_stop of { elapsed : float }

type event = { at : float; segment : segment }
type t = event list
type builder = { mutable events : event list }

let builder () = { events = [] }
let record b ~at segment = b.events <- { at; segment } :: b.events
let finish b = List.rev b.events
let segments t = List.map (fun e -> e.segment) t

let duration = function
  | Compute { duration; _ } | Verify { duration; _ }
  | Checkpoint { duration } | Recovery { duration } ->
      duration
  | Fail_stop { elapsed } -> elapsed

let total_time t = Numerics.Summation.sum_by (fun e -> duration e.segment) t

let count t pred =
  List.fold_left (fun n e -> if pred e.segment then n + 1 else n) 0 t

let is_well_formed t =
  let rec ordered = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> a.at <= b.at && ordered rest
  in
  let rec check = function
    | [] -> true
    | { segment = Verify { passed = true; _ }; _ }
      :: ({ segment = Checkpoint _; _ } :: _ as rest) ->
        check rest
    | { segment = Verify { passed = true; _ }; _ } :: _ -> false
    | { segment = Verify { passed = false; _ }; _ }
      :: ({ segment = Recovery _; _ } :: _ as rest) ->
        check rest
    | [ { segment = Verify { passed = false; _ }; _ } ] -> true
    | { segment = Verify { passed = false; _ }; _ } :: _ -> false
    | { segment = Fail_stop _; _ }
      :: ({ segment = Recovery _; _ } :: _ as rest) ->
        check rest
    | [ { segment = Fail_stop _; _ } ] -> true
    | { segment = Fail_stop _; _ } :: _ -> false
    | { segment = Compute _ | Checkpoint _ | Recovery _; _ } :: rest ->
        check rest
  in
  (* A Checkpoint must follow a passed Verify: scan pairs in reverse. *)
  let rec checkpoints_verified = function
    | [] -> true
    | { segment = Checkpoint _; _ } :: rest -> begin
        match rest with
        | { segment = Verify { passed = true; _ }; _ } :: _ ->
            checkpoints_verified rest
        | [] | _ :: _ -> false
      end
    | _ :: rest -> checkpoints_verified rest
  in
  ordered t && check t && checkpoints_verified (List.rev t)

let pp_segment ppf = function
  | Compute { speed; duration; work } ->
      Format.fprintf ppf "compute[w=%g @ s=%g, %.2fs]" work speed duration
  | Verify { speed; duration; passed } ->
      Format.fprintf ppf "verify[s=%g, %.2fs, %s]" speed duration
        (if passed then "ok" else "SDC detected")
  | Checkpoint { duration } -> Format.fprintf ppf "checkpoint[%.2fs]" duration
  | Recovery { duration } -> Format.fprintf ppf "recovery[%.2fs]" duration
  | Fail_stop { elapsed } -> Format.fprintf ppf "FAIL-STOP[+%.2fs]" elapsed

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_cut ppf ())
    (fun ppf e -> Format.fprintf ppf "t=%10.2f  %a" e.at pp_segment e.segment)
    ppf t
