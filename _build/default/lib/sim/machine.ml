type t = {
  power : Core.Power.t;
  mutable clock : float;
  energy : Numerics.Summation.t;
}

let create power = { power; clock = 0.; energy = Numerics.Summation.create () }

let advance_compute t ~speed ~duration =
  if duration < 0. then invalid_arg "Machine.advance_compute: negative duration";
  if speed <= 0. then invalid_arg "Machine.advance_compute: non-positive speed";
  t.clock <- t.clock +. duration;
  Numerics.Summation.add t.energy
    (duration *. Core.Power.compute_total t.power speed)

let advance_io t ~duration =
  if duration < 0. then invalid_arg "Machine.advance_io: negative duration";
  t.clock <- t.clock +. duration;
  Numerics.Summation.add t.energy (duration *. Core.Power.io_total t.power)

let clock t = t.clock
let energy t = Numerics.Summation.total t.energy
let power t = t.power

let reset t =
  t.clock <- 0.;
  Numerics.Summation.reset t.energy
