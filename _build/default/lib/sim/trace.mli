(** Structured execution traces.

    A trace is the simulator's rendering of the paper's Figure 1: the
    sequence of compute / verify / checkpoint / recovery segments with
    their speeds and the errors that struck. Tests assert schedule
    properties on traces (e.g. "every re-execution runs at sigma2",
    "every checkpoint is preceded by a passed verification"). *)

type segment =
  | Compute of { speed : float; duration : float; work : float }
      (** A computation slice: [work] units executed at [speed]. *)
  | Verify of { speed : float; duration : float; passed : bool }
      (** End-of-pattern verification; [passed = false] means a silent
          error was detected. *)
  | Checkpoint of { duration : float }
  | Recovery of { duration : float }
  | Fail_stop of { elapsed : float }
      (** A fail-stop error killed the attempt after [elapsed] seconds
          of the current compute/verify phase. *)

type event = { at : float;  (** Wall-clock start time of the segment. *)
               segment : segment }

type t = event list
(** Events in chronological order. *)

type builder
(** Mutable accumulator used by the executor. *)

val builder : unit -> builder
val record : builder -> at:float -> segment -> unit
val finish : builder -> t
(** Chronological event list; the builder can keep recording. *)

val segments : t -> segment list
val total_time : t -> float
(** Sum of all segment durations (a fail-stop contributes [elapsed]). *)

val count : t -> (segment -> bool) -> int

val is_well_formed : t -> bool
(** Schedule sanity: events strictly ordered in time, every
    [Checkpoint] immediately preceded by a passed [Verify], every
    failed [Verify] and every [Fail_stop] followed by a [Recovery]
    (except at end of trace truncation). *)

val pp_segment : Format.formatter -> segment -> unit
val pp : Format.formatter -> t -> unit
