(** Multi-node platform simulator.

    The paper works with an aggregate abstraction — "each speed is the
    aggregated speed of all processors in the platform" — where errors
    on any node corrupt the coordinated pattern. This module simulates
    that platform explicitly: each node carries its own Poisson error
    processes; a pattern computes for [w /. sigma] wall-clock seconds
    on all nodes simultaneously; the earliest fail-stop arrival across
    nodes (found with the {!Pqueue} event queue) kills the attempt, and
    a silent error on any node is caught by the coordinated
    end-of-pattern verification. By superposition of Poisson processes
    this is distributionally the aggregate model with the *summed*
    rates — which the Monte-Carlo tests verify, justifying the paper's
    abstraction even for heterogeneous nodes (e.g. one flaky board). *)

type t = private {
  node_lambda_f : float array;  (** Per-node fail-stop rates, per second. *)
  node_lambda_s : float array;  (** Per-node silent rates, per second. *)
  c : float;
  r : float;
  v : float;
}

val make :
  nodes:int -> node_lambda_f:float -> node_lambda_s:float -> c:float ->
  ?r:float -> v:float -> unit -> t
(** Homogeneous platform: every node has the same rates. [r] defaults
    to [c].
    @raise Invalid_argument if [nodes < 1], rates are negative or both
    zero, or times are negative. *)

val heterogeneous :
  node_lambda_f:float array -> node_lambda_s:float array -> c:float ->
  ?r:float -> v:float -> unit -> t
(** Per-node rates (the two arrays must have equal positive length).
    @raise Invalid_argument on length mismatch, empty arrays, negative
    rates, or an all-zero platform. *)

val nodes : t -> int

val aggregate_model : t -> Core.Mixed.t
(** The equivalent aggregate error model: summed per-node rates. *)

type outcome = {
  time : float;
  energy : float;
  re_executions : int;
  silent_errors : int;  (** Patterns re-executed due to silent errors
                            (counted once per failed attempt even if
                            several nodes were hit). *)
  fail_stop_errors : int;
  errors_by_node : int array;
      (** Per-node count of decisive errors (the crashing node, or
          every silently-corrupted node of a failed attempt). *)
}

val run_pattern :
  ?trace:Trace.builder -> t -> machine:Machine.t -> rng:Prng.Rng.t ->
  w:float -> sigma1:float -> sigma2:float -> unit -> outcome
(** Execute one coordinated pattern to successful checkpoint.
    @raise Invalid_argument on non-positive [w] or speeds. *)

val run_application :
  t -> power:Core.Power.t -> rng:Prng.Rng.t -> w_base:float ->
  pattern_w:float -> sigma1:float -> sigma2:float -> unit -> outcome
(** Whole divisible application (last pattern takes the remainder);
    [time] is the makespan and the error counters accumulate. *)
