(* Array-backed binary min-heap ordered by (priority, sequence): the
   sequence number makes ties deterministic (FIFO among equals). *)

type 'a entry = { priority : float; sequence : int; payload : 'a }

type 'a t = {
  mutable entries : 'a entry array;  (* length = capacity, not size *)
  mutable size : int;
  mutable next_sequence : int;
}

let create () = { entries = [||]; size = 0; next_sequence = 0 }
let length t = t.size
let is_empty t = t.size = 0

let less a b =
  a.priority < b.priority
  || (a.priority = b.priority && a.sequence < b.sequence)

let swap t i j =
  let tmp = t.entries.(i) in
  t.entries.(i) <- t.entries.(j);
  t.entries.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.entries.(i) t.entries.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < t.size && less t.entries.(left) t.entries.(!smallest) then
    smallest := left;
  if right < t.size && less t.entries.(right) t.entries.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let capacity = Array.length t.entries in
  if t.size = capacity then begin
    let new_capacity = Int.max 8 (2 * capacity) in
    let fresh = Array.make new_capacity t.entries.(0) in
    Array.blit t.entries 0 fresh 0 t.size;
    t.entries <- fresh
  end

let push t ~priority payload =
  if Float.is_nan priority then invalid_arg "Pqueue.push: NaN priority";
  let entry = { priority; sequence = t.next_sequence; payload } in
  t.next_sequence <- t.next_sequence + 1;
  if Array.length t.entries = 0 then t.entries <- Array.make 8 entry
  else grow t;
  t.entries.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t =
  if t.size = 0 then None
  else
    let e = t.entries.(0) in
    Some (e.priority, e.payload)

let pop t =
  if t.size = 0 then None
  else begin
    let e = t.entries.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.entries.(0) <- t.entries.(t.size);
      sift_down t 0
    end;
    Some (e.priority, e.payload)
  end

let clear t =
  t.size <- 0;
  t.next_sequence <- 0

let of_list items =
  let t = create () in
  List.iter (fun (priority, payload) -> push t ~priority payload) items;
  t

let to_sorted_list t =
  let rec drain acc =
    match pop t with None -> List.rev acc | Some e -> drain (e :: acc)
  in
  drain []
