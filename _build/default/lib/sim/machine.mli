(** DVFS machine: virtual clock plus segment-wise energy integration.

    Mirrors Section 2.1 exactly: a compute or verification segment at
    speed [sigma] draws [Pidle + kappa sigma^3]; an I/O segment
    (checkpoint or recovery) draws [Pidle + Pio]. Energy accumulates in
    a compensated sum so that million-segment runs keep full precision. *)

type t

val create : Core.Power.t -> t
(** A machine at time 0 with zero energy. *)

val advance_compute : t -> speed:float -> duration:float -> unit
(** Advance the clock by [duration] seconds of computation (or
    verification) at [speed], charging compute power.
    @raise Invalid_argument on negative duration or non-positive speed. *)

val advance_io : t -> duration:float -> unit
(** Advance through an I/O (checkpoint/recovery) segment.
    @raise Invalid_argument on negative duration. *)

val clock : t -> float
(** Current wall-clock time, seconds. *)

val energy : t -> float
(** Energy consumed so far, mW * s (i.e. mJ). *)

val power : t -> Core.Power.t

val reset : t -> unit
(** Back to time 0 / zero energy (the power model is kept). *)
