type t = {
  platform : Platform.t;
  processor : Processor.t;
  r : float;
  p_io : float;
}

let make ?r ?p_io platform processor =
  let r = Option.value r ~default:platform.Platform.c in
  let p_io = Option.value p_io ~default:(Processor.default_p_io processor) in
  if r < 0. then invalid_arg "Config.make: negative recovery time";
  if p_io < 0. then invalid_arg "Config.make: negative I/O power";
  { platform; processor; r; p_io }

let name t = t.platform.Platform.name ^ "/" ^ t.processor.Processor.name

let all =
  List.concat_map
    (fun platform ->
      List.map (fun processor -> make platform processor) Processor.all)
    Platform.all

let find s =
  match String.split_on_char '/' s with
  | [ p; proc ] -> begin
      match (Platform.find p, Processor.find proc) with
      | Some platform, Some processor -> Some (make platform processor)
      | None, _ | _, None -> None
    end
  | [] | [ _ ] | _ :: _ :: _ -> None

let default_rho = 3.

let pp ppf t =
  Format.fprintf ppf "%s (R=%gs, Pio=%.4g mW)" (name t) t.r t.p_io
