type t = { name : string; lambda : float; c : float; v : float }

let hera = { name = "Hera"; lambda = 3.38e-6; c = 300.; v = 15.4 }
let atlas = { name = "Atlas"; lambda = 7.78e-6; c = 439.; v = 9.1 }
let coastal = { name = "Coastal"; lambda = 2.01e-6; c = 1051.; v = 4.5 }

let coastal_ssd =
  { name = "Coastal SSD"; lambda = 2.01e-6; c = 2500.; v = 180. }

let all = [ hera; atlas; coastal; coastal_ssd ]

let normalize s =
  String.lowercase_ascii s
  |> String.map (function ' ' | '-' -> '_' | ch -> ch)

let find name =
  let wanted = normalize name in
  List.find_opt (fun p -> normalize p.name = wanted) all

let mtbf p = 1. /. p.lambda

let pp ppf p =
  Format.fprintf ppf "%s (lambda=%.3g /s, C=%gs, V=%gs)" p.name p.lambda p.c
    p.v
