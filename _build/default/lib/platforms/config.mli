(** The eight virtual platform x processor configurations (Section 4.1).

    A configuration pairs a {!Platform.t} with a {!Processor.t} and
    freezes the experiment defaults: [r = c], [p_io] = dynamic CPU power
    at the slowest speed, performance bound [rho = 3]. Every paper table
    and figure is evaluated against one of these. *)

type t = {
  platform : Platform.t;
  processor : Processor.t;
  r : float;  (** Recovery time, seconds. Default: [platform.c]. *)
  p_io : float;  (** Dynamic I/O power, mW. Default: {!Processor.default_p_io}. *)
}

val make :
  ?r:float -> ?p_io:float -> Platform.t -> Processor.t -> t
(** [make platform processor] applies the paper's defaults; [?r] and
    [?p_io] override them.
    @raise Invalid_argument on negative [r] or [p_io]. *)

val name : t -> string
(** ["Hera/XScale"]-style display name. *)

val all : t list
(** All eight configurations, platforms major, processors minor:
    Hera/XScale, Hera/Crusoe, Atlas/XScale, ... *)

val find : string -> t option
(** [find "atlas/crusoe"] — case-insensitive ["platform/processor"]
    lookup with paper defaults. *)

val default_rho : float
(** The paper's default performance bound, 3. *)

val pp : Format.formatter -> t -> unit
