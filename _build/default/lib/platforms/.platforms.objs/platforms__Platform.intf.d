lib/platforms/platform.mli: Format
