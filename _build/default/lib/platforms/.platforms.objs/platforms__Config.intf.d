lib/platforms/config.mli: Format Platform Processor
