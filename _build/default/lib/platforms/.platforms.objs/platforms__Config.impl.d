lib/platforms/config.ml: Format List Option Platform Processor String
