lib/platforms/config_file.ml: Buffer Float Hashtbl In_channel List Option Printf Result String
