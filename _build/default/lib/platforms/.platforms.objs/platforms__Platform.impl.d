lib/platforms/platform.ml: Format List String
