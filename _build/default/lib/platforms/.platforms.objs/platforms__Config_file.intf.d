lib/platforms/config_file.mli:
