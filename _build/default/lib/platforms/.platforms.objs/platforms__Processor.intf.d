lib/platforms/processor.mli: Format
