lib/platforms/processor.ml: Format List String
