(** DVFS processors of the paper's Table 2.

    A processor exposes a set of normalized speeds and a cubic power
    law [P(sigma) = kappa * sigma^3 + p_idle] (mW): [kappa * sigma^3]
    is the dynamic CPU power and [p_idle] the static power. The default
    I/O power follows the paper's rule — the dynamic CPU power at the
    slowest available speed. *)

type t = {
  name : string;
  speeds : float list;  (** Normalized speeds, strictly increasing, in (0, 1]. *)
  kappa : float;  (** Dynamic power coefficient, mW per (unit speed)^3. *)
  p_idle : float;  (** Static (idle) power, mW. *)
}

val xscale : t
(** Intel XScale: speeds 0.15/0.4/0.6/0.8/1, P = 1550 s^3 + 60 mW. *)

val crusoe : t
(** Transmeta Crusoe: speeds 0.45/0.6/0.8/0.9/1, P = 5756 s^3 + 4.4 mW. *)

val all : t list
(** Both processors in Table 2 order. *)

val find : string -> t option
(** Case-insensitive lookup by name (["xscale"], ["crusoe"]). *)

val cpu_power : t -> float -> float
(** [cpu_power p sigma] is the dynamic power [kappa * sigma^3], mW. *)

val total_power : t -> float -> float
(** [total_power p sigma] is [cpu_power p sigma +. p_idle], mW. *)

val default_p_io : t -> float
(** Default dynamic I/O power: [cpu_power p (min speed)] (Section 4.1). *)

val min_speed : t -> float
(** Slowest available speed. *)

val max_speed : t -> float
(** Fastest available speed. *)

val validate : t -> (unit, string) result
(** Check the invariants: non-empty strictly increasing speeds in
    (0, 1], non-negative powers. The built-in processors satisfy it;
    exposed so users can vet custom processors. *)

val pp : Format.formatter -> t -> unit
