type t = { name : string; speeds : float list; kappa : float; p_idle : float }

let xscale =
  {
    name = "XScale";
    speeds = [ 0.15; 0.4; 0.6; 0.8; 1.0 ];
    kappa = 1550.;
    p_idle = 60.;
  }

let crusoe =
  {
    name = "Crusoe";
    speeds = [ 0.45; 0.6; 0.8; 0.9; 1.0 ];
    kappa = 5756.;
    p_idle = 4.4;
  }

let all = [ xscale; crusoe ]

let find name =
  let wanted = String.lowercase_ascii name in
  List.find_opt (fun p -> String.lowercase_ascii p.name = wanted) all

let cpu_power p sigma = p.kappa *. sigma *. sigma *. sigma
let total_power p sigma = cpu_power p sigma +. p.p_idle

let min_speed p =
  match p.speeds with
  | [] -> invalid_arg "Processor.min_speed: no speeds"
  | s :: _ -> s

let max_speed p =
  match List.rev p.speeds with
  | [] -> invalid_arg "Processor.max_speed: no speeds"
  | s :: _ -> s

let default_p_io p = cpu_power p (min_speed p)

let validate p =
  let rec strictly_increasing = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
  in
  if p.speeds = [] then Error "no speeds"
  else if List.exists (fun s -> s <= 0. || s > 1.) p.speeds then
    Error "speeds must lie in (0, 1]"
  else if not (strictly_increasing p.speeds) then
    Error "speeds must be strictly increasing"
  else if p.kappa < 0. then Error "kappa must be non-negative"
  else if p.p_idle < 0. then Error "p_idle must be non-negative"
  else Ok ()

let pp ppf p =
  Format.fprintf ppf "%s (speeds: %a; P = %g s^3 + %g mW)" p.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf s -> Format.fprintf ppf "%g" s))
    p.speeds p.kappa p.p_idle
