(** Checkpointing platforms of the paper's Table 1.

    The four LLNL platforms of Moody et al. (SC'10) as used in the
    paper's experiments: silent-error rate [lambda] (per second of
    wall-clock), checkpoint time [c] and full-speed verification time
    [v], both in seconds. Recovery defaults to [r = c] (Section 4.1). *)

type t = {
  name : string;
  lambda : float;  (** Silent error rate, errors per second. *)
  c : float;  (** Checkpoint time, seconds. *)
  v : float;  (** Verification time at full speed, seconds. *)
}

val hera : t
(** Hera: lambda = 3.38e-6, C = 300 s, V = 15.4 s. *)

val atlas : t
(** Atlas: lambda = 7.78e-6, C = 439 s, V = 9.1 s. *)

val coastal : t
(** Coastal: lambda = 2.01e-6, C = 1051 s, V = 4.5 s. *)

val coastal_ssd : t
(** Coastal SSD: lambda = 2.01e-6, C = 2500 s, V = 180 s. *)

val all : t list
(** The four platforms in the paper's Table 1 order. *)

val find : string -> t option
(** [find name] looks a platform up by case-insensitive name
    (["hera"], ["atlas"], ["coastal"], ["coastal_ssd"] or
    ["coastal ssd"]). *)

val mtbf : t -> float
(** Platform MTBF, mu = 1 / lambda, in seconds. *)

val pp : Format.formatter -> t -> unit
(** Human-readable one-line rendering. *)
