(** Root finding: numerically stable quadratics and bracketing methods.

    Theorem 1 of the paper reduces the time-bound constraint to the sign
    of [a*W^2 + b*W + c]; with [a = lambda/(sigma1*sigma2)] of order
    1e-6 and [b], [c] of order 1, the textbook quadratic formula loses
    the small root to cancellation, so we use the Citardauq variant. *)

type quadratic_roots =
  | No_real_root  (** Negative discriminant. *)
  | Double_root of float  (** Discriminant is zero (within a relative tolerance). *)
  | Two_roots of float * float  (** Roots in increasing order. *)

val quadratic : a:float -> b:float -> c:float -> quadratic_roots
(** [quadratic ~a ~b ~c] solves [a*x^2 + b*x + c = 0] with the stable
    formulation [q = -(b + sign b * sqrt disc) / 2; x1 = q/a; x2 = c/q].
    A degenerate [a = 0.] falls back to the linear equation, reported as
    a double root (or [No_real_root] when [b = 0.] and [c <> 0.]).
    @raise Invalid_argument if all of [a], [b], [c] are zero. *)

val bisection :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float ->
  unit -> float
(** [bisection ~f ~lo ~hi ()] finds a root of [f] in [lo, hi], which
    must bracket a sign change. [tol] (default 1e-12 relative to the
    bracket) bounds the final interval width.
    @raise Invalid_argument if [f lo] and [f hi] have the same strict sign. *)

val brent :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float ->
  unit -> float
(** [brent ~f ~lo ~hi ()] is Brent's method: inverse-quadratic
    interpolation guarded by bisection. Same bracketing contract as
    {!bisection}, superlinear convergence on smooth functions. *)
