type t = { mutable total : float; mutable compensation : float }

let create () = { total = 0.; compensation = 0. }

(* Neumaier's variant of Kahan summation: unlike plain Kahan it stays
   accurate when the next addend is larger than the running total. *)
let add acc x =
  let t = acc.total +. x in
  let c =
    if Float.abs acc.total >= Float.abs x then acc.total -. t +. x
    else x -. t +. acc.total
  in
  acc.compensation <- acc.compensation +. c;
  acc.total <- t

let total acc = acc.total +. acc.compensation

let reset acc =
  acc.total <- 0.;
  acc.compensation <- 0.

let sum a =
  let acc = create () in
  Array.iter (add acc) a;
  total acc

let sum_list l =
  let acc = create () in
  List.iter (add acc) l;
  total acc

let pairwise_sum a =
  let rec go lo len =
    if len = 0 then 0.
    else if len <= 8 then (
      let s = ref 0. in
      for i = lo to lo + len - 1 do
        s := !s +. a.(i)
      done;
      !s)
    else
      let half = len / 2 in
      go lo half +. go (lo + half) (len - half)
  in
  go 0 (Array.length a)

let sum_by f l =
  let acc = create () in
  List.iter (fun x -> add acc (f x)) l;
  total acc
