(** Fixed-bin histograms and a chi-square goodness-of-fit statistic.

    Used to compare the simulator's empirical distributions against the
    closed-form laws — a sharper check than matching means. *)

type t = private {
  lo : float;  (** Left edge of the first bin. *)
  hi : float;  (** Right edge of the last bin. *)
  counts : int array;  (** Per-bin counts. *)
  underflow : int;  (** Samples below [lo]. *)
  overflow : int;  (** Samples at or above [hi]. *)
}

val create : lo:float -> hi:float -> bins:int -> t
(** An empty histogram.
    @raise Invalid_argument if [bins < 1], bounds are non-finite or
    [lo >= hi]. *)

val add : t -> float -> t
(** Functional insert (histograms are small; copying keeps the API
    pure). NaN samples raise. *)

val of_samples : lo:float -> hi:float -> bins:int -> float array -> t
(** Build in one pass. *)

val total : t -> int
(** All samples seen, including under/overflow. *)

val bin_index : t -> float -> [ `Bin of int | `Underflow | `Overflow ]
val bin_edges : t -> int -> float * float
(** [bin_edges t i] is the half-open interval of bin [i].
    @raise Invalid_argument on an out-of-range index. *)

val chi_square :
  observed:int array -> expected:float array -> float
(** Pearson's statistic [sum (O - E)^2 / E] over the given cells.
    Cells with [expected < 1e-12] must have zero observations (raises
    otherwise — merge sparse cells before calling).
    @raise Invalid_argument on length mismatch or empty input. *)

val chi_square_critical : df:int -> float
(** Upper 0.1% critical value of the chi-square distribution with [df]
    degrees of freedom (Wilson-Hilferty approximation, adequate for
    df >= 1; within ~1% of tables). A GOF test "passes" when the
    statistic is below this.
    @raise Invalid_argument if [df < 1]. *)
