(** Sample-point generators for parameter sweeps.

    The paper's figures sample C, V, Pidle and Pio on linear axes
    (0..5000 s or mW) and the error rate lambda on a logarithmic axis
    (1e-6..1e-2); these generators produce exactly those grids. *)

val linspace : lo:float -> hi:float -> n:int -> float list
(** [linspace ~lo ~hi ~n] is [n] evenly spaced points from [lo] to [hi]
    inclusive. [n = 1] yields [[lo]].
    @raise Invalid_argument if [n < 1] or [lo > hi]. *)

val logspace : lo:float -> hi:float -> n:int -> float list
(** [logspace ~lo ~hi ~n] is [n] points geometrically spaced from [lo]
    to [hi] inclusive.
    @raise Invalid_argument if [n < 1], [lo <= 0.] or [lo > hi]. *)

val arange : lo:float -> hi:float -> step:float -> float list
(** [arange ~lo ~hi ~step] is [lo, lo+step, ...] up to and including any
    point within half a step of [hi].
    @raise Invalid_argument if [step <= 0.] or [lo > hi]. *)
