type t = {
  lo : float;
  hi : float;
  counts : int array;
  underflow : int;
  overflow : int;
}

let create ~lo ~hi ~bins =
  if bins < 1 then invalid_arg "Histogram.create: bins < 1";
  if not (Float.is_finite lo && Float.is_finite hi) || lo >= hi then
    invalid_arg "Histogram.create: invalid bounds";
  { lo; hi; counts = Array.make bins 0; underflow = 0; overflow = 0 }

let bin_index t x =
  if Float.is_nan x then invalid_arg "Histogram.bin_index: NaN sample";
  if x < t.lo then `Underflow
  else if x >= t.hi then `Overflow
  else
    let bins = Array.length t.counts in
    let i =
      int_of_float ((x -. t.lo) /. (t.hi -. t.lo) *. float_of_int bins)
    in
    `Bin (Int.min (bins - 1) i)

let add t x =
  match bin_index t x with
  | `Underflow -> { t with underflow = t.underflow + 1 }
  | `Overflow -> { t with overflow = t.overflow + 1 }
  | `Bin i ->
      let counts = Array.copy t.counts in
      counts.(i) <- counts.(i) + 1;
      { t with counts }

let of_samples ~lo ~hi ~bins samples =
  (* One mutable pass; the result is still an immutable value. *)
  let counts = Array.make bins 0 in
  let underflow = ref 0 and overflow = ref 0 in
  let shell = create ~lo ~hi ~bins in
  Array.iter
    (fun x ->
      match bin_index shell x with
      | `Underflow -> incr underflow
      | `Overflow -> incr overflow
      | `Bin i -> counts.(i) <- counts.(i) + 1)
    samples;
  { lo; hi; counts; underflow = !underflow; overflow = !overflow }

let total t =
  Array.fold_left ( + ) (t.underflow + t.overflow) t.counts

let bin_edges t i =
  let bins = Array.length t.counts in
  if i < 0 || i >= bins then invalid_arg "Histogram.bin_edges: out of range";
  let width = (t.hi -. t.lo) /. float_of_int bins in
  (t.lo +. (float_of_int i *. width), t.lo +. (float_of_int (i + 1) *. width))

let chi_square ~observed ~expected =
  let n = Array.length observed in
  if n = 0 || n <> Array.length expected then
    invalid_arg "Histogram.chi_square: cell arrays empty or mismatched";
  let acc = Summation.create () in
  Array.iteri
    (fun i o ->
      let e = expected.(i) in
      if e < 1e-12 then begin
        if o <> 0 then
          invalid_arg
            "Histogram.chi_square: observation in a zero-expectation cell"
      end
      else
        let d = float_of_int o -. e in
        Summation.add acc (d *. d /. e))
    observed;
  Summation.total acc

(* Wilson-Hilferty: chi2_p(df) ~ df (1 - 2/(9 df) + z_p sqrt(2/(9 df)))^3
   with z_0.999 = 3.0902. *)
let chi_square_critical ~df =
  if df < 1 then invalid_arg "Histogram.chi_square_critical: df < 1";
  let d = float_of_int df in
  let z = 3.0902 in
  let term = 1. -. (2. /. (9. *. d)) +. (z *. sqrt (2. /. (9. *. d))) in
  d *. term *. term *. term
