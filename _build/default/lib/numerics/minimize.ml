let inv_phi = (sqrt 5. -. 1.) /. 2.

let golden_section ?(tol = 1e-10) ?(max_iter = 400) ~f ~lo ~hi () =
  if lo >= hi then invalid_arg "Minimize.golden_section: empty interval";
  let a = ref lo and b = ref hi in
  let x1 = ref (!b -. (inv_phi *. (!b -. !a))) in
  let x2 = ref (!a +. (inv_phi *. (!b -. !a))) in
  let f1 = ref (f !x1) and f2 = ref (f !x2) in
  let iter = ref 0 in
  let width () = !b -. !a in
  let scale () = Float.max 1. (Float.abs (0.5 *. (!a +. !b))) in
  while width () > tol *. scale () && !iter < max_iter do
    incr iter;
    if !f1 <= !f2 then begin
      b := !x2;
      x2 := !x1;
      f2 := !f1;
      x1 := !b -. (inv_phi *. (!b -. !a));
      f1 := f !x1
    end
    else begin
      a := !x1;
      x1 := !x2;
      f1 := !f2;
      x2 := !a +. (inv_phi *. (!b -. !a));
      f2 := f !x2
    end
  done;
  let x = 0.5 *. (!a +. !b) in
  (x, f x)

let ternary ?(tol = 1e-10) ?(max_iter = 400) ~f ~lo ~hi () =
  if lo >= hi then invalid_arg "Minimize.ternary: empty interval";
  let a = ref lo and b = ref hi in
  let iter = ref 0 in
  while
    !b -. !a > tol *. Float.max 1. (Float.abs (0.5 *. (!a +. !b)))
    && !iter < max_iter
  do
    incr iter;
    let m1 = !a +. ((!b -. !a) /. 3.) in
    let m2 = !b -. ((!b -. !a) /. 3.) in
    if f m1 <= f m2 then b := m2 else a := m1
  done;
  let x = 0.5 *. (!a +. !b) in
  (x, f x)

let grid_then_golden ?(points = 256) ~f ~lo ~hi () =
  if lo >= hi then invalid_arg "Minimize.grid_then_golden: empty interval";
  let n = Int.max points 3 in
  let step = (hi -. lo) /. float_of_int (n - 1) in
  let best_i = ref 0 and best_v = ref (f lo) in
  for i = 1 to n - 1 do
    let x = lo +. (float_of_int i *. step) in
    let v = f x in
    if v < !best_v then begin
      best_i := i;
      best_v := v
    end
  done;
  let sub_lo = Float.max lo (lo +. (float_of_int (!best_i - 1) *. step)) in
  let sub_hi = Float.min hi (lo +. (float_of_int (!best_i + 1) *. step)) in
  if sub_hi > sub_lo then golden_section ~f ~lo:sub_lo ~hi:sub_hi ()
  else (sub_lo, f sub_lo)

let argmin_by f l =
  let better acc x =
    let v = f x in
    match acc with
    | Some (_, best) when best <= v -> acc
    | Some _ | None -> Some (x, v)
  in
  List.fold_left better None l
