let linspace ~lo ~hi ~n =
  if n < 1 then invalid_arg "Axis.linspace: n < 1";
  if lo > hi then invalid_arg "Axis.linspace: lo > hi";
  if n = 1 then [ lo ]
  else
    let step = (hi -. lo) /. float_of_int (n - 1) in
    List.init n (fun i ->
        if i = n - 1 then hi else lo +. (float_of_int i *. step))

let logspace ~lo ~hi ~n =
  if lo <= 0. then invalid_arg "Axis.logspace: lo <= 0";
  if lo > hi then invalid_arg "Axis.logspace: lo > hi";
  List.map exp (linspace ~lo:(log lo) ~hi:(log hi) ~n)

let arange ~lo ~hi ~step =
  if step <= 0. then invalid_arg "Axis.arange: step <= 0";
  if lo > hi then invalid_arg "Axis.arange: lo > hi";
  let n = 1 + int_of_float (Float.round ((hi -. lo) /. step)) in
  let points =
    List.init n (fun i -> lo +. (float_of_int i *. step))
  in
  List.filter (fun x -> x <= hi +. (0.5 *. step)) points
