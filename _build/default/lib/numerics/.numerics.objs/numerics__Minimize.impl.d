lib/numerics/minimize.ml: Float Int List
