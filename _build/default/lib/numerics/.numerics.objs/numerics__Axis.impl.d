lib/numerics/axis.ml: Float List
