lib/numerics/summation.mli:
