lib/numerics/histogram.ml: Array Float Int Summation
