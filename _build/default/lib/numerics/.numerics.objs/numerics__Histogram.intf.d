lib/numerics/histogram.mli:
