lib/numerics/axis.mli:
