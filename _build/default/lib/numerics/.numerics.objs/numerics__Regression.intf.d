lib/numerics/regression.mli:
