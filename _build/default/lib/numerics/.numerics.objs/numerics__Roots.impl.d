lib/numerics/roots.ml: Float
