lib/numerics/minimize.mli:
