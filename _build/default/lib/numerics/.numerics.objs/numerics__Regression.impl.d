lib/numerics/regression.ml: Float_utils List Summation
