lib/numerics/stats.ml: Array Float Float_utils Summation
