lib/numerics/stats.mli:
