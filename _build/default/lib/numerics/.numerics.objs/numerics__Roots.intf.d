lib/numerics/roots.mli:
