(** One-dimensional minimization of unimodal objectives.

    The exact energy overhead [E(W)/W] of the paper is convex in the
    pattern size on the feasibility window, so golden-section search
    on a bracket is exact up to tolerance; grid refinement handles the
    non-smooth clamped objectives used in cross-checks. *)

val golden_section :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float ->
  unit -> float * float
(** [golden_section ~f ~lo ~hi ()] minimizes unimodal [f] on [lo, hi];
    returns [(x_min, f x_min)]. [tol] (default 1e-10) is relative to the
    bracket midpoint magnitude.
    @raise Invalid_argument if [lo >= hi]. *)

val ternary :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float ->
  unit -> float * float
(** Ternary search — simpler, slightly slower convergence; used as an
    independent witness for golden-section results in property tests. *)

val grid_then_golden :
  ?points:int -> f:(float -> float) -> lo:float -> hi:float -> unit ->
  float * float
(** [grid_then_golden ~f ~lo ~hi ()] evaluates [f] on a uniform grid
    ([points], default 256), then refines around the best grid cell with
    golden-section search. Robust to mild non-unimodality such as the
    clamped objective W -> E(clamp W)/clamp W. *)

val argmin_by : ('a -> float) -> 'a list -> ('a * float) option
(** [argmin_by f l] is the element of [l] minimizing [f] together with
    its value, or [None] on the empty list. Ties keep the earliest
    element, which callers rely on for deterministic speed-pair
    selection. *)
