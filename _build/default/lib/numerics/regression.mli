(** Least-squares line fitting.

    Theorem 2 of the paper predicts [Wopt = Theta(lambda^(-2/3))] when
    re-executing twice faster; the reproduction measures the exponent as
    the slope of a log-log fit of Wopt against lambda. *)

type fit = {
  slope : float;
  intercept : float;
  r_squared : float;  (** Coefficient of determination; 1. for a perfect fit.
                          Defined as 1. when the ys are constant and the fit
                          is exact. *)
}

val linear_fit : (float * float) list -> fit
(** [linear_fit pts] is the ordinary least-squares line through [pts].
    @raise Invalid_argument with fewer than two points or when all xs
    coincide. *)

val log_log_fit : (float * float) list -> fit
(** [log_log_fit pts] fits [log y = slope * log x + intercept]; the
    slope estimates the power-law exponent of y in x.
    @raise Invalid_argument if any coordinate is non-positive, or per
    {!linear_fit}. *)
