(** Compensated and pairwise summation.

    Monte-Carlo energy/time accumulators add millions of small
    contributions to large running totals; naive summation loses the
    low-order bits that the model-validation tests rely on. *)

type t
(** Mutable Kahan-Babuška (Neumaier) accumulator. *)

val create : unit -> t
(** A fresh accumulator holding 0. *)

val add : t -> float -> unit
(** [add acc x] accumulates [x] with compensated error tracking. *)

val total : t -> float
(** Current compensated total. *)

val reset : t -> unit
(** Reset the accumulator to 0. *)

val sum : float array -> float
(** [sum a] is the compensated sum of all elements of [a]. *)

val sum_list : float list -> float
(** [sum_list l] is the compensated sum of all elements of [l]. *)

val pairwise_sum : float array -> float
(** [pairwise_sum a] sums by recursive halving — O(log n) error growth,
    used as an independent cross-check of {!sum} in tests. *)

val sum_by : ('a -> float) -> 'a list -> float
(** [sum_by f l] is the compensated sum of [f x] for [x] in [l]. *)
