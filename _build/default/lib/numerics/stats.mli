(** Descriptive statistics and confidence intervals.

    Used by the Monte-Carlo harness to compare empirical means of
    simulated pattern time/energy against the paper's closed-form
    expectations (Props 1-5). *)

type summary = {
  n : int;
  mean : float;
  variance : float;  (** Unbiased sample variance (n-1 denominator). *)
  stddev : float;
  std_error : float;  (** stddev / sqrt n. *)
  min : float;
  max : float;
}

val summarize : float array -> summary
(** [summarize a] computes all fields in one compensated pass.
    @raise Invalid_argument on the empty array. *)

val mean : float array -> float
(** Compensated arithmetic mean. @raise Invalid_argument on empty. *)

val variance : float array -> float
(** Unbiased sample variance; 0. for singleton arrays.
    @raise Invalid_argument on empty. *)

val confidence_interval : ?z:float -> summary -> float * float
(** [confidence_interval ~z s] is the normal-approximation interval
    [mean -/+ z * std_error]. Default [z = 2.5758] (99%). *)

val within_confidence : ?z:float -> expected:float -> float array -> bool
(** [within_confidence ~expected samples] tests whether [expected] lies
    inside the (wide, default 99.9%: z=3.2905) confidence interval of
    the sample mean — the acceptance criterion of the model-vs-simulator
    tests. Degenerate all-equal samples compare exactly. *)

val median : float array -> float
(** Median (average of middle pair for even sizes). Does not mutate the
    input. @raise Invalid_argument on empty. *)

val quantile : float array -> float -> float
(** [quantile a p] is the linearly interpolated p-quantile, [0 <= p <= 1].
    @raise Invalid_argument on empty input or p outside [0, 1]. *)
