(** Paper-vs-measured comparison records.

    EXPERIMENTS.md and the bench harness report every reproduced
    quantity through these records, so "paper said / we measured /
    verdict" is rendered uniformly. *)

type verdict =
  | Exact  (** Within rounding of the paper's printed number. *)
  | Shape of string  (** Qualitative property reproduced; says which. *)
  | Deviates of string  (** Reproduction differs; says how/why. *)

type entry = {
  experiment : string;  (** e.g. "Table rho=3" or "Fig 2". *)
  metric : string;  (** e.g. "Wopt(0.4, 0.4)". *)
  paper : string;  (** The paper's value or claim, as printed. *)
  measured : string;  (** Our number/result. *)
  verdict : verdict;
}

val entry :
  experiment:string -> metric:string -> paper:string -> measured:string ->
  verdict:verdict -> entry

val numeric :
  experiment:string -> metric:string -> paper:float -> measured:float ->
  ?tolerance:float -> unit -> entry
(** Compare numbers: verdict [Exact] when the measured value rounds to
    the paper's within [tolerance] (default: relative 1e-3 plus
    absolute 1.0, matching the paper's integer-printed tables). *)

val all_ok : entry list -> bool
(** No [Deviates] verdict present. *)

val pp_entry : Format.formatter -> entry -> unit
val render_markdown : entry list -> string
(** A GitHub-flavoured markdown table of the entries. *)
