lib/report/chart.mli:
