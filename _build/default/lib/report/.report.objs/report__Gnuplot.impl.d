lib/report/gnuplot.ml: Array Buffer Float Fun List Option Printf String
