lib/report/compare.ml: Buffer Float Format List Printf
