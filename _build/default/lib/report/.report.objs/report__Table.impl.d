lib/report/table.ml: Buffer Float Int List Printf String
