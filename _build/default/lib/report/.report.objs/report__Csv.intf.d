lib/report/csv.mli:
