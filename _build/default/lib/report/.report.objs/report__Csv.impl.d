lib/report/csv.ml: Array Buffer Float Fun List Printf String
