lib/report/gnuplot.mli:
