lib/report/chart.ml: Array Buffer Float Int List Printf String
