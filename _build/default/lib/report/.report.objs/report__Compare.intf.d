lib/report/compare.mli: Format
