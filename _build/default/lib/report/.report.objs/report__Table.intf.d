lib/report/table.mli:
