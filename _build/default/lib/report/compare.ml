type verdict = Exact | Shape of string | Deviates of string

type entry = {
  experiment : string;
  metric : string;
  paper : string;
  measured : string;
  verdict : verdict;
}

let entry ~experiment ~metric ~paper ~measured ~verdict =
  { experiment; metric; paper; measured; verdict }

let numeric ~experiment ~metric ~paper ~measured ?(tolerance = 1e-3) () =
  let close =
    Float.abs (measured -. paper)
    <= 1.0 +. (tolerance *. Float.abs paper)
  in
  {
    experiment;
    metric;
    paper = Printf.sprintf "%g" paper;
    measured = Printf.sprintf "%g" measured;
    verdict =
      (if close then Exact
       else
         Deviates
           (Printf.sprintf "off by %.3g%%"
              (100. *. Float.abs ((measured -. paper) /. paper))));
  }

let all_ok entries =
  List.for_all
    (fun e -> match e.verdict with Exact | Shape _ -> true | Deviates _ -> false)
    entries

let verdict_string = function
  | Exact -> "exact"
  | Shape s -> "shape: " ^ s
  | Deviates s -> "DEVIATES: " ^ s

let pp_entry ppf e =
  Format.fprintf ppf "[%s] %s: paper=%s measured=%s (%s)" e.experiment
    e.metric e.paper e.measured (verdict_string e.verdict)

let render_markdown entries =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer
    "| Experiment | Metric | Paper | Measured | Verdict |\n";
  Buffer.add_string buffer "|---|---|---|---|---|\n";
  List.iter
    (fun e ->
      Buffer.add_string buffer
        (Printf.sprintf "| %s | %s | %s | %s | %s |\n" e.experiment e.metric
           e.paper e.measured (verdict_string e.verdict)))
    entries;
  Buffer.contents buffer
