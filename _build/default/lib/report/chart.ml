type series = {
  label : string;
  points : (float * float) list;
  glyph : char;
}

let finite (x, y) = Float.is_finite x && Float.is_finite y

let render ?(width = 72) ?(height = 20) ?(logx = false) ~title all_series =
  if width < 16 then invalid_arg "Chart.render: width < 16";
  if height < 4 then invalid_arg "Chart.render: height < 4";
  let usable =
    List.map
      (fun s ->
        let points =
          List.filter
            (fun ((x, _) as p) -> finite p && ((not logx) || x > 0.))
            s.points
        in
        { s with points })
      all_series
    |> List.filter (fun s -> s.points <> [])
  in
  let buffer = Buffer.create 2048 in
  Buffer.add_string buffer (title ^ "\n");
  if usable = [] then begin
    Buffer.add_string buffer "(no data)\n";
    Buffer.contents buffer
  end
  else begin
    let xs =
      List.concat_map (fun s -> List.map fst s.points) usable
      |> List.map (fun x -> if logx then log x else x)
    in
    let ys = List.concat_map (fun s -> List.map snd s.points) usable in
    let x_min = List.fold_left Float.min (List.hd xs) xs in
    let x_max = List.fold_left Float.max (List.hd xs) xs in
    let y_min = List.fold_left Float.min (List.hd ys) ys in
    let y_max = List.fold_left Float.max (List.hd ys) ys in
    let x_span = if x_max > x_min then x_max -. x_min else 1. in
    let y_span = if y_max > y_min then y_max -. y_min else 1. in
    let canvas = Array.make_matrix height width ' ' in
    let plot s =
      List.iter
        (fun (x, y) ->
          let x = if logx then log x else x in
          let column =
            int_of_float
              (Float.round ((x -. x_min) /. x_span *. float_of_int (width - 1)))
          in
          let row =
            height - 1
            - int_of_float
                (Float.round
                   ((y -. y_min) /. y_span *. float_of_int (height - 1)))
          in
          if row >= 0 && row < height && column >= 0 && column < width then
            canvas.(row).(column) <- s.glyph)
        s.points
    in
    List.iter plot usable;
    let y_label_width = 10 in
    Array.iteri
      (fun row line ->
        let label =
          if row = 0 then Printf.sprintf "%*.4g" y_label_width y_max
          else if row = height - 1 then
            Printf.sprintf "%*.4g" y_label_width y_min
          else String.make y_label_width ' '
        in
        Buffer.add_string buffer (label ^ " |");
        Buffer.add_string buffer (String.init width (fun i -> line.(i)));
        Buffer.add_char buffer '\n')
      canvas;
    Buffer.add_string buffer (String.make (y_label_width + 1) ' ');
    Buffer.add_string buffer ("+" ^ String.make width '-');
    Buffer.add_char buffer '\n';
    let x_lo = if logx then exp x_min else x_min in
    let x_hi = if logx then exp x_max else x_max in
    let left = Printf.sprintf "%.4g" x_lo in
    let right = Printf.sprintf "%.4g" x_hi in
    let pad =
      Int.max 1 (width - String.length left - String.length right)
    in
    Buffer.add_string buffer
      (String.make (y_label_width + 2) ' ' ^ left ^ String.make pad ' '
     ^ right);
    Buffer.add_char buffer '\n';
    let legend =
      String.concat "   "
        (List.map (fun s -> Printf.sprintf "%c = %s" s.glyph s.label) usable)
    in
    Buffer.add_string buffer ("  " ^ legend ^ "\n");
    Buffer.contents buffer
  end
