type align = Left | Right

type t = {
  header : string list;
  aligns : align list;
  mutable rows : string list list;  (* reverse order *)
}

let create ?aligns ~header () =
  if header = [] then invalid_arg "Table.create: empty header";
  let aligns =
    match aligns with
    | None -> List.map (fun _ -> Right) header
    | Some a ->
        if List.length a <> List.length header then
          invalid_arg "Table.create: aligns/header length mismatch"
        else a
  in
  { header; aligns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- row :: t.rows

let add_float_row ?(precision = 6) t row =
  let cell v =
    if Float.is_nan v then "-" else Printf.sprintf "%.*g" precision v
  in
  add_row t (List.map cell row)

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun widths row -> List.map2 (fun w c -> Int.max w (String.length c)) widths row)
      (List.map String.length t.header)
      rows
  in
  let pad align width cell =
    let fill = String.make (width - String.length cell) ' ' in
    match align with Left -> cell ^ fill | Right -> fill ^ cell
  in
  let render_row row =
    let cells =
      List.map2 (fun (a, w) c -> pad a w c) (List.combine t.aligns widths) row
    in
    String.concat "  " cells
  in
  let separator =
    String.concat "--" (List.map (fun w -> String.make w '-') widths)
  in
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer (render_row t.header);
  Buffer.add_char buffer '\n';
  Buffer.add_string buffer separator;
  Buffer.add_char buffer '\n';
  List.iter
    (fun row ->
      Buffer.add_string buffer (render_row row);
      Buffer.add_char buffer '\n')
    rows;
  Buffer.contents buffer

let render_markdown t =
  let escape cell =
    String.concat "\\|" (String.split_on_char '|' cell)
  in
  let row cells = "| " ^ String.concat " | " (List.map escape cells) ^ " |" in
  let marker = function Left -> ":---" | Right -> "---:" in
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer (row t.header);
  Buffer.add_char buffer '\n';
  Buffer.add_string buffer
    ("| " ^ String.concat " | " (List.map marker t.aligns) ^ " |");
  Buffer.add_char buffer '\n';
  List.iter
    (fun cells ->
      Buffer.add_string buffer (row cells);
      Buffer.add_char buffer '\n')
    (List.rev t.rows);
  Buffer.contents buffer

let print t = print_string (render t)
