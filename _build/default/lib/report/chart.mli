(** Terminal line charts.

    Renders one or two series as a plain-ASCII chart so the CLI's
    [figure] subcommand can show the paper's curves without gnuplot.
    Deterministic output (pure text), hence golden-testable. *)

type series = {
  label : string;
  points : (float * float) list;  (** Must be sorted by x. *)
  glyph : char;  (** Mark used for this series, e.g. '*' or '+'. *)
}

val render :
  ?width:int -> ?height:int -> ?logx:bool -> title:string ->
  series list -> string
(** [render ~title series] draws the series on a [width] x [height]
    character canvas (defaults 72 x 20) with min/max axis annotations.
    Series with no finite points are skipped; an empty chart renders a
    placeholder line. When two series overlap on a cell the later
    series' glyph wins. [logx] spaces the x axis logarithmically
    (points with non-positive x are dropped).
    @raise Invalid_argument if [width < 16] or [height < 4]. *)
