(** Plain-text table rendering for the benchmark harness and CLI.

    Produces the aligned ASCII tables that mirror the paper's Section
    4.2 tables and the per-figure series dumps. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : ?aligns:align list -> header:string list -> unit -> t
(** [create ~header ()] starts a table; [aligns] defaults to [Right]
    for every column.
    @raise Invalid_argument if [header] is empty or [aligns] has a
    different length. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val add_float_row : ?precision:int -> t -> float list -> unit
(** Formats each value with [%.*g] ([precision] defaults to 6); NaN
    renders as ["-"], matching the paper's infeasible-cell symbol. *)

val render : t -> string
(** The full table with a header separator, newline-terminated. *)

val render_markdown : t -> string
(** GitHub-flavoured markdown rendering (pipes escaped in cells,
    alignment markers in the separator row). *)

val print : t -> unit
(** [print t] writes {!render} to stdout. *)
