(** Extension: patterns with several intermediate verifications.

    The paper's pattern verifies once, at the end — a silent error
    striking early therefore wastes the whole pattern. Its foundation
    [Benoit, Robert & Raina, IJHPCA 2015] interleaves verifications:
    cut the pattern into [m] equal segments and verify after each, so
    an error in segment [i] is caught after [i/m] of the work instead
    of all of it, at the price of [m] verification costs per pattern.
    This module generalizes Propositions 1-3 to [m] verifications while
    keeping the paper's two-speed re-execution model; [m = 1] recovers
    them exactly.

    Derivation: with [x = exp (-lambda W / (m sigma))] the segment
    survival, one attempt at speed [sigma] executes
    [A = (W/m + V)/sigma * (1 - x^m)/(1 - x)] in expectation (it stops
    at the first failed verification) and succeeds with probability
    [x^m]; the pattern recursion of Proposition 2 then applies
    unchanged. *)

type t = private {
  params : Params.t;
  verifications : int;  (** m >= 1 verifications per pattern. *)
}

val make : Params.t -> verifications:int -> t
(** @raise Invalid_argument if [verifications < 1]. *)

val attempt_time : t -> w:float -> sigma:float -> float
(** Expected compute + verification time of a single attempt (stopping
    at the first detected error), [A] above. *)

val expected_time : t -> w:float -> sigma1:float -> sigma2:float -> float
(** Expected pattern time; equals {!Exact.expected_time} at [m = 1]. *)

val expected_energy :
  t -> Power.t -> w:float -> sigma1:float -> sigma2:float -> float
(** Expected pattern energy; equals {!Exact.expected_energy} at [m = 1]. *)

val time_overhead : t -> w:float -> sigma1:float -> sigma2:float -> float
val energy_overhead :
  t -> Power.t -> w:float -> sigma1:float -> sigma2:float -> float

type solution = {
  verifications : int;
  sigma1 : float;
  sigma2 : float;
  w_opt : float;
  energy_overhead : float;
  time_overhead : float;
}

val solve_pattern :
  t -> Power.t -> rho:float -> sigma1:float -> sigma2:float ->
  solution option
(** Numerically minimize the exact energy overhead over [w] subject to
    the exact time bound, for a fixed verification count and speed
    pair (same method as {!Mixed_bicrit}). *)

val solve :
  ?max_verifications:int -> Env.t -> rho:float -> solution option
(** Full extension solver: enumerate [m in 1 .. max_verifications]
    (default 8) and every speed pair, return the energy-optimal
    combination. [None] when the bound is unattainable even at m = 1.
    @raise Invalid_argument if [max_verifications < 1] or [rho <= 0.]. *)
