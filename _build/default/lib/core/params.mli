(** Resilience parameters of the execution model (Section 2.1).

    Groups the silent-error rate [lambda] (per second), checkpoint time
    [c], recovery time [r] and full-speed verification time [v] (all in
    seconds). The verification at speed [sigma] takes [v /. sigma]
    seconds; checkpoint and recovery are I/O-bound and do not scale
    with speed. *)

type t = private {
  lambda : float;  (** Silent error rate, errors per second; > 0. *)
  c : float;  (** Checkpoint time, seconds; >= 0. *)
  r : float;  (** Recovery time, seconds; >= 0. *)
  v : float;  (** Verification time at unit speed, seconds; >= 0. *)
}

val make : lambda:float -> c:float -> ?r:float -> v:float -> unit -> t
(** [make ~lambda ~c ~v ()] builds a parameter set; [r] defaults to [c]
    (the paper's Section 4.1 convention: a read costs a write).
    @raise Invalid_argument if [lambda <= 0.] or any time is negative
    or non-finite. *)

val of_platform : ?r:float -> Platforms.Platform.t -> t
(** Parameters of a Table 1 platform. *)

val mtbf : t -> float
(** Platform MTBF, [1. /. lambda]. *)

val with_lambda : t -> float -> t
(** Functional update used by sweeps; same validation as {!make}. *)

val with_c : ?keep_r:bool -> t -> float -> t
(** [with_c t c] sets the checkpoint time. Unless [keep_r] is [true],
    [r] follows [c] (the paper sweeps C with R = C). *)

val with_r : t -> float -> t
val with_v : t -> float -> t

val pp : Format.formatter -> t -> unit
