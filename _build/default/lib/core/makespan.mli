(** Application-level makespan distribution.

    A divisible application of [w_base] work runs [n = ceil (w_base/w)]
    independent patterns; its makespan is the sum of n iid pattern
    times whose law {!Distribution} gives in closed form. For the
    hundreds-to-thousands of patterns of a real run the central limit
    theorem applies, so the makespan is Normal(n mu, n var) to
    excellent accuracy — which turns the paper's expectation-only
    analysis into tail-risk planning: "the p99 makespan under this
    pattern is X hours". *)

type t = private {
  pattern : Distribution.t;
  patterns : int;  (** Number of full patterns (the remainder pattern
                       is folded in as a fractional contribution). *)
  remainder : float;  (** Work units in the trailing short pattern. *)
}

val make : Distribution.t -> w_base:float -> t
(** @raise Invalid_argument if [w_base <= 0.]. *)

val mean : t -> float
(** Expected makespan, seconds — consistent with
    {!Exact.total_makespan} up to the remainder-pattern correction. *)

val variance : t -> float
val stddev : t -> float

val quantile : t -> float -> float
(** Normal-approximation makespan quantile, [0 < p < 1].
    @raise Invalid_argument outside (0, 1). *)

val tail_probability : t -> deadline:float -> float
(** [P(makespan > deadline)] under the normal approximation. *)

val mean_energy : t -> Power.t -> float
val energy_quantile : t -> Power.t -> float -> float

val normal_quantile : float -> float
(** Standard-normal quantile (Acklam's rational approximation,
    |error| < 1.2e-8) — exposed for testing.
    @raise Invalid_argument outside (0, 1). *)
