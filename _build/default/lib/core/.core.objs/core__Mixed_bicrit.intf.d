lib/core/mixed_bicrit.mli: Env Mixed Power
