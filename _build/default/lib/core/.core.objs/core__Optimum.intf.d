lib/core/optimum.mli: Feasibility Format Params Power
