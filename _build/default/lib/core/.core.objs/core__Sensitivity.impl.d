lib/core/sensitivity.ml: First_order List Params Power
