lib/core/makespan.ml: Array Distribution Float
