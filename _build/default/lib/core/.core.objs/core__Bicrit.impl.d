lib/core/bicrit.ml: Array Env Feasibility Float List Numerics Optimum Option
