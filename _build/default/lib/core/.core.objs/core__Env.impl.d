lib/core/env.ml: Array Float Format List Params Platforms Power
