lib/core/continuous.ml: Array Bicrit Env Float List Numerics Optimum Option
