lib/core/second_order.ml: Float Mixed Numerics
