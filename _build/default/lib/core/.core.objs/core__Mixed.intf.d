lib/core/mixed.mli: First_order Params Power
