lib/core/young_daly.mli: Params
