lib/core/params.mli: Format Platforms
