lib/core/second_order.mli:
