lib/core/feasibility.mli: Params
