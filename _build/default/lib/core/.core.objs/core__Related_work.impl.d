lib/core/related_work.ml: Exact First_order Float Params Power
