lib/core/makespan.mli: Distribution Power
