lib/core/related_work.mli: Params Power
