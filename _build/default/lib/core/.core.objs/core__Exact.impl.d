lib/core/exact.ml: Float Params Power
