lib/core/young_daly.ml: First_order Float Params
