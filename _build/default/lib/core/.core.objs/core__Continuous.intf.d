lib/core/continuous.mli: Env Optimum Params Power
