lib/core/multi_verif.ml: Array Env Float List Numerics Option Params Power
