lib/core/sensitivity.mli: Params Power
