lib/core/first_order.ml: Params Power
