lib/core/exact.mli: Params Power
