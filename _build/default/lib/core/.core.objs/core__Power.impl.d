lib/core/power.ml: Float Format Option Platforms
