lib/core/mixed.ml: First_order Float Numerics Option Params Power
