lib/core/first_order.mli: Params Power
