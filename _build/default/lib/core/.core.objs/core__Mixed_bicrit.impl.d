lib/core/mixed_bicrit.ml: Array Env Float List Mixed Numerics Power
