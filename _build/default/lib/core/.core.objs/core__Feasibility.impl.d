lib/core/feasibility.ml: First_order Float Numerics Params
