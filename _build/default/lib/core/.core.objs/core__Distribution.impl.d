lib/core/distribution.ml: Float Params Power
