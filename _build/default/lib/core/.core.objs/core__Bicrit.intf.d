lib/core/bicrit.mli: Env Optimum
