lib/core/env.mli: Format Params Platforms Power
