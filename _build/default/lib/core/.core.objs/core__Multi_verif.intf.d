lib/core/multi_verif.mli: Env Params Power
