lib/core/distribution.mli: Params Power
