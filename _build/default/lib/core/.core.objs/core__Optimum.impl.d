lib/core/optimum.ml: Exact Feasibility First_order Format
