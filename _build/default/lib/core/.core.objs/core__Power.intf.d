lib/core/power.mli: Format Platforms
