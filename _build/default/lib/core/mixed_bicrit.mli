(** Numeric BiCrit for both error sources — the paper's open problem.

    Section 5 shows the first-order machinery only covers re-execution
    ratios inside [(2(1+s/f))^(-1/2), 2(1+s/f)]; Section 7 leaves "the
    general case with two error sources and arbitrary speed pairs" to
    future work. This module solves that general case numerically on
    the *exact* expectations of {!Mixed}: per speed pair, the feasible
    pattern-size window of [T(W)/W <= rho] is found by bracketed root
    finding around the minimizer of the (unimodal) exact time overhead,
    and the exact energy overhead is then minimized on the window by
    golden-section search. No Taylor expansion — valid at any ratio,
    any error mix, any rate. *)

type solution = {
  sigma1 : float;
  sigma2 : float;
  w_opt : float;
  window : float * float;  (** Feasible [w] interval under the bound. *)
  energy_overhead : float;  (** Exact E(Wopt)/Wopt, mW. *)
  time_overhead : float;  (** Exact T(Wopt)/Wopt; <= rho. *)
}

type result = {
  best : solution;
  candidates : solution list;  (** Every feasible pair, enumeration order. *)
}

val time_window :
  ?w_max:float -> Mixed.t -> rho:float -> sigma1:float -> sigma2:float ->
  (float * float) option
(** Feasible pattern sizes: the (possibly empty) interval where the
    exact [Mixed.expected_time / w <= rho]. The search is confined to
    (0, w_max] ([w_max] defaults to 1e4 x the expected work between
    errors — far beyond any useful pattern). [None] when the bound is
    unattainable for this pair. *)

val solve_pair :
  ?w_max:float -> Mixed.t -> Power.t -> rho:float -> sigma1:float ->
  sigma2:float -> solution option
(** Exact Theorem-1 analogue for one pair. *)

val solve :
  ?w_max:float -> ?single_speed:bool -> Mixed.t -> Power.t ->
  speeds:float list -> rho:float -> result option
(** Enumerate the speed set (pairs, or the diagonal when
    [single_speed]), keep the pair with the smallest exact energy
    overhead. [None] when no pair meets the bound.
    @raise Invalid_argument on an empty speed list, non-positive
    speeds, or [rho <= 0.]. *)

val of_env :
  ?single_speed:bool -> Env.t -> fail_stop_fraction:float -> rho:float ->
  result option
(** Convenience: split the environment's rate per Section 5.2 and
    solve over its speed set. *)
