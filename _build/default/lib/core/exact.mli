(** Exact expected time and energy of one pattern under silent errors
    (Propositions 1-3 of the paper).

    A pattern executes [w] units of work at speed [sigma1], verifies,
    and checkpoints on success; on a detected error it recovers and
    re-executes — every re-execution at speed [sigma2] — until the
    verification passes. Silent errors strike during the compute phase
    with probability [p(w/sigma) = 1 - exp (-lambda * w / sigma)]. *)

val error_probability : Params.t -> w:float -> sigma:float -> float
(** [error_probability p ~w ~sigma] is [p(w/sigma)], computed with
    [expm1] for accuracy at small rates. *)

val expected_time_single : Params.t -> w:float -> sigma:float -> float
(** Proposition 1:
    [T(W,s,s) = C + e^(lW/s) (W+V)/s + (e^(lW/s) - 1) R]. *)

val expected_time : Params.t -> w:float -> sigma1:float -> sigma2:float -> float
(** Proposition 2:
    [T(W,s1,s2) = C + (W+V)/s1
                  + (1 - e^(-lW/s1)) e^(lW/s2) (R + (W+V)/s2)]. *)

val expected_energy :
  Params.t -> Power.t -> w:float -> sigma1:float -> sigma2:float -> float
(** Proposition 3: checkpoint/recovery charged at [Pio + Pidle],
    compute and verification at speed [s] charged at
    [kappa s^3 + Pidle]. *)

val expected_reexecutions :
  Params.t -> w:float -> sigma1:float -> sigma2:float -> float
(** Expected number of re-executions,
    [(1 - e^(-lW/s1)) e^(lW/s2)] — the factor multiplying the recovery
    and re-execution costs in Proposition 2. *)

val time_overhead :
  Params.t -> w:float -> sigma1:float -> sigma2:float -> float
(** [expected_time / w] — the exact per-work-unit execution time whose
    first-order expansion is the paper's Equation (2). *)

val energy_overhead :
  Params.t -> Power.t -> w:float -> sigma1:float -> sigma2:float -> float
(** [expected_energy / w] — exact counterpart of Equation (3). *)

val total_makespan :
  Params.t -> w:float -> sigma1:float -> sigma2:float -> w_base:float -> float
(** [total_makespan p ~w ~sigma1 ~sigma2 ~w_base] is the expected
    makespan of a divisible application of [w_base] total work units
    partitioned into patterns of size [w]:
    [T(w,s1,s2)/w * w_base] (Section 2.3). *)

val total_energy :
  Params.t -> Power.t -> w:float -> sigma1:float -> sigma2:float ->
  w_base:float -> float
(** Expected total energy of the full application, per Section 2.3. *)
