type solution = {
  sigma1 : float;
  sigma2 : float;
  w_opt : float;
  window : float * float;
  energy_overhead : float;
  time_overhead : float;
}

type result = { best : solution; candidates : solution list }

let w_floor = 1e-6

(* Keep the failure exponent of one attempt below ~50 so every
   intermediate exponential stays finite: the overhead there is e^50x
   the error-free one, unimaginably past any bound of interest. *)
let default_w_max (m : Mixed.t) ~sigma1 ~sigma2 =
  let rate = Mixed.total_rate m in
  let sigma_min = Float.min sigma1 sigma2 in
  Float.min (1e4 /. rate) (50. *. sigma_min /. rate)

let check_speeds sigma1 sigma2 =
  if sigma1 <= 0. || sigma2 <= 0. then
    invalid_arg "Mixed_bicrit: speeds must be positive"

let time_window ?w_max (m : Mixed.t) ~rho ~sigma1 ~sigma2 =
  check_speeds sigma1 sigma2;
  if rho <= 0. then invalid_arg "Mixed_bicrit.time_window: rho must be positive";
  let w_max =
    match w_max with Some w -> w | None -> default_w_max m ~sigma1 ~sigma2
  in
  if w_max <= w_floor then
    invalid_arg "Mixed_bicrit.time_window: w_max too small";
  let overhead w = Mixed.expected_time m ~w ~sigma1 ~sigma2 /. w in
  (* The overhead is unimodal in w: locate its minimum on a log grid,
     then bracket the rho-crossings on either side. *)
  let log_lo = log w_floor and log_hi = log w_max in
  let u_star, best =
    Numerics.Minimize.grid_then_golden ~points:256
      ~f:(fun u -> overhead (exp u))
      ~lo:log_lo ~hi:log_hi ()
  in
  if best > rho then None
  else
    let gap w = overhead w -. rho in
    let w_star = exp u_star in
    let left =
      if gap w_floor <= 0. then w_floor
      else Numerics.Roots.brent ~f:gap ~lo:w_floor ~hi:w_star ()
    in
    let right =
      if gap w_max <= 0. then w_max
      else Numerics.Roots.brent ~f:gap ~lo:w_star ~hi:w_max ()
    in
    Some (left, right)

let solve_pair ?w_max (m : Mixed.t) (pw : Power.t) ~rho ~sigma1 ~sigma2 =
  match time_window ?w_max m ~rho ~sigma1 ~sigma2 with
  | None -> None
  | Some (w1, w2) ->
      let energy w = Mixed.expected_energy m pw ~w ~sigma1 ~sigma2 /. w in
      let w_opt, energy_overhead =
        if w2 <= w1 *. (1. +. 1e-12) then (w1, energy w1)
        else
          let u, v =
            Numerics.Minimize.golden_section
              ~f:(fun u -> energy (exp u))
              ~lo:(log w1) ~hi:(log w2) ()
          in
          (exp u, v)
      in
      Some
        {
          sigma1;
          sigma2;
          w_opt;
          window = (w1, w2);
          energy_overhead;
          time_overhead = Mixed.expected_time m ~w:w_opt ~sigma1 ~sigma2 /. w_opt;
        }

let solve ?w_max ?(single_speed = false) m pw ~speeds ~rho =
  if speeds = [] then invalid_arg "Mixed_bicrit.solve: empty speed set";
  if List.exists (fun s -> s <= 0.) speeds then
    invalid_arg "Mixed_bicrit.solve: speeds must be positive";
  if rho <= 0. then invalid_arg "Mixed_bicrit.solve: rho must be positive";
  let pairs =
    if single_speed then List.map (fun s -> (s, s)) speeds
    else List.concat_map (fun s1 -> List.map (fun s2 -> (s1, s2)) speeds) speeds
  in
  let candidates =
    List.filter_map
      (fun (sigma1, sigma2) -> solve_pair ?w_max m pw ~rho ~sigma1 ~sigma2)
      pairs
  in
  match
    Numerics.Minimize.argmin_by (fun s -> s.energy_overhead) candidates
  with
  | None -> None
  | Some (best, _) -> Some { best; candidates }

let of_env ?single_speed (env : Env.t) ~fail_stop_fraction ~rho =
  let m = Mixed.of_params env.params ~fail_stop_fraction in
  solve ?single_speed m env.power
    ~speeds:(Array.to_list env.speeds)
    ~rho
