(** Second-order analysis for fail-stop errors (Section 5.3).

    With fail-stop errors only (no verification needed: [v = 0.]) and
    re-execution at [sigma2 = 2 sigma1], the first-order [W]
    coefficient of the time overhead vanishes and the next order takes
    over: Proposition 7 gives
    [T/W = 1/s1 + C/W + (1/(s1 s2) - 1/(2 s1^2)) l W + l R / s1
           + (1/(6 s1^3) - 1/(2 s1^2 s2) + 1/(2 s1 s2^2)) l^2 W^2],
    and Theorem 2 the striking optimum
    [Wopt = (12 C / l^2)^(1/3) * s1 = Theta (l^(-2/3))]. *)

val time_overhead_order2 :
  c:float -> r:float -> lambda:float -> w:float -> sigma1:float ->
  sigma2:float -> float
(** Proposition 7 — second-order time overhead, fail-stop errors only.
    @raise Invalid_argument on non-positive [lambda], [w] or speeds, or
    negative [c]/[r]. *)

val linear_coefficient : lambda:float -> sigma1:float -> sigma2:float -> float
(** The [W] coefficient [(1/(s1 s2) - 1/(2 s1^2)) l]; zero exactly when
    [sigma2 = 2 sigma1]. *)

val quadratic_coefficient :
  lambda:float -> sigma1:float -> sigma2:float -> float
(** The [W^2] coefficient; at [sigma2 = 2 sigma1] it reduces to
    [l^2 / (24 s1^3)]. *)

val w_opt_twice_faster : c:float -> lambda:float -> sigma:float -> float
(** Theorem 2: [(12 c / lambda^2)^(1/3) *. sigma] — optimal pattern
    size when re-executing twice faster, in Theta(lambda^(-2/3)).
    @raise Invalid_argument on non-positive arguments. *)

val w_opt_order2 :
  c:float -> r:float -> lambda:float -> sigma1:float -> sigma2:float -> float
(** Minimizer of {!time_overhead_order2} in [w]: the positive root of
    [-C/W^2 + y + 2 q W = 0] with [y] the linear and [q] the quadratic
    coefficient — solved in closed form when [y = 0.] (Theorem 2) and
    numerically (Brent on the derivative) otherwise.
    @raise Invalid_argument when both [y <= 0.] and [q <= 0.] (no
    interior minimum; happens for [sigma2 > 2 sigma1] far from the
    validity window). *)

val w_opt_exact :
  c:float -> r:float -> lambda:float -> sigma1:float -> sigma2:float ->
  float * float
(** Numeric minimizer [(w, overhead)] of the exact fail-stop expected
    time overhead ({!Mixed.expected_time} with [lambda_s = 0.],
    [v = 0.]) — the referee for Theorem 2's scaling claim. *)
