type t = { lambda : float; c : float; r : float; v : float }

let check name x =
  if not (Float.is_finite x) || x < 0. then
    invalid_arg ("Params: " ^ name ^ " must be a non-negative finite float")

let make ~lambda ~c ?r ~v () =
  let r = Option.value r ~default:c in
  if not (Float.is_finite lambda) || lambda <= 0. then
    invalid_arg "Params: lambda must be a positive finite float";
  check "c" c;
  check "r" r;
  check "v" v;
  { lambda; c; r; v }

let of_platform ?r (p : Platforms.Platform.t) =
  make ~lambda:p.lambda ~c:p.c ?r ~v:p.v ()

let mtbf t = 1. /. t.lambda
let with_lambda t lambda = make ~lambda ~c:t.c ~r:t.r ~v:t.v ()

let with_c ?(keep_r = false) t c =
  let r = if keep_r then Some t.r else Some c in
  make ~lambda:t.lambda ~c ?r ~v:t.v ()

let with_r t r = make ~lambda:t.lambda ~c:t.c ~r ~v:t.v ()
let with_v t v = make ~lambda:t.lambda ~c:t.c ~r:t.r ~v ()

let pp ppf t =
  Format.fprintf ppf "{lambda=%.4g; C=%g; R=%g; V=%g}" t.lambda t.c t.r t.v
