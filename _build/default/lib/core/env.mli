(** A complete model environment: resilience parameters, power model
    and the discrete DVFS speed set [S = {sigma_1 .. sigma_K}].

    This is the unit the BiCrit solver and the sweep engine operate on;
    all the functional [with_*] updates exist so that the paper's
    figures (which vary one parameter at a time) are one-liners. *)

type t = private {
  params : Params.t;
  power : Power.t;
  speeds : float array;  (** Strictly increasing, all > 0. *)
}

val make : params:Params.t -> power:Power.t -> speeds:float list -> t
(** @raise Invalid_argument if [speeds] is empty, non-increasing, or
    contains a non-positive or non-finite value. *)

val of_config : Platforms.Config.t -> t
(** Environment of one of the paper's eight configurations. *)

val of_config_file : Platforms.Config_file.t -> t
(** Environment from a parsed custom-machine file; defaults [r = c]
    and [p_io = kappa * (min speed)^3] follow the paper's conventions.
    @raise Invalid_argument if the file's values violate the model
    invariants (same checks as {!make}). *)

val speed_pairs : t -> (float * float) list
(** All K^2 ordered pairs (sigma_1, sigma_2), first-speed major. *)

val with_params : t -> Params.t -> t
val with_power : t -> Power.t -> t
val with_lambda : t -> float -> t
val with_c : t -> float -> t
(** Sets C and keeps R = C, the convention of the paper's C-sweeps. *)

val with_v : t -> float -> t
val with_p_idle : t -> float -> t
val with_p_io : t -> float -> t

val pp : Format.formatter -> t -> unit
