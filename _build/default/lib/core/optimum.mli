(** Theorem 1: optimal pattern size for a fixed speed pair.

    The energy overhead (Equation 3) is convex in W; its unconstrained
    minimizer is [We] (Equation 5), and the performance bound restricts
    W to the window [W1, W2] of {!Feasibility}. Hence
    [Wopt = min (max (W1, We)) W2] (Equation 4). *)

type solution = {
  sigma1 : float;
  sigma2 : float;
  w_opt : float;  (** Optimal pattern size, Equation (4). *)
  w_energy : float;  (** Unconstrained energy minimizer We, Equation (5). *)
  window : Feasibility.window;  (** Admissible window [W1, W2]. *)
  energy_overhead : float;  (** E(Wopt)/Wopt under Equation (3). *)
  time_overhead : float;  (** T(Wopt)/Wopt under Equation (2); <= rho. *)
  bound_active : bool;  (** true iff the performance bound displaced We. *)
}

val w_energy : Params.t -> Power.t -> sigma1:float -> sigma2:float -> float
(** Equation (5):
    [We = sqrt ((C (Pio+Pidle) + V (k s1^3 + Pidle)/s1)
                / (l (k s2^3 + Pidle)/(s1 s2)))]. *)

val solve_pair :
  Params.t -> Power.t -> rho:float -> sigma1:float -> sigma2:float ->
  solution option
(** Theorem 1 for the pair [(sigma1, sigma2)]: [None] when the bound is
    unattainable ([rho < rho_min]), otherwise the optimal pattern and
    its first-order overheads. *)

val exact_overheads :
  Params.t -> Power.t -> solution -> float * float
(** [(time, energy)] per-work-unit overheads of the solution under the
    exact Propositions 2-3 — the accuracy check of the first-order
    pattern. *)

val pp_solution : Format.formatter -> solution -> unit
