type overhead = { const : float; linear : float; inverse : float }

let eval o ~w =
  if w <= 0. then invalid_arg "First_order.eval: w must be positive";
  o.const +. (o.linear *. w) +. (o.inverse /. w)

let unconstrained_minimizer o =
  if o.linear <= 0. then
    invalid_arg
      "First_order.unconstrained_minimizer: non-positive linear coefficient";
  sqrt (o.inverse /. o.linear)

let minimum_value o =
  if o.linear <= 0. then
    invalid_arg "First_order.minimum_value: non-positive linear coefficient";
  o.const +. (2. *. sqrt (o.linear *. o.inverse))

let check_speeds sigma1 sigma2 =
  if sigma1 <= 0. || sigma2 <= 0. then
    invalid_arg "First_order: speeds must be positive"

let time (p : Params.t) ~sigma1 ~sigma2 =
  check_speeds sigma1 sigma2;
  {
    const =
      (1. /. sigma1)
      +. (p.lambda *. ((p.r /. sigma1) +. (p.v /. (sigma1 *. sigma2))));
    linear = p.lambda /. (sigma1 *. sigma2);
    inverse = p.c +. (p.v /. sigma1);
  }

let energy (p : Params.t) (pw : Power.t) ~sigma1 ~sigma2 =
  check_speeds sigma1 sigma2;
  let compute1 = Power.compute_total pw sigma1 in
  let compute2 = Power.compute_total pw sigma2 in
  let io = Power.io_total pw in
  (* The lambda V cross term charges the *re-executed* verification,
     which runs at sigma2 — hence kappa sigma2^3, not the kappa
     sigma1^3 the paper's Equation (3) prints (a typo: expanding its
     own Proposition 3 yields sigma2^3; the difference is O(lambda V)
     and invisible at the paper's printed precision). *)
  {
    const =
      (compute1 /. sigma1)
      +. (p.lambda *. p.r *. io /. sigma1)
      +. (p.lambda *. p.v *. compute2 /. (sigma1 *. sigma2));
    linear = p.lambda *. compute2 /. (sigma1 *. sigma2);
    inverse = (p.c *. io) +. (p.v *. compute1 /. sigma1);
  }
