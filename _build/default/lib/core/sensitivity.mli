(** Closed-form sensitivities of the unconstrained optimum.

    Section 4.3 of the paper studies how the optimal pattern reacts to
    each parameter by plotting sweeps; this module gives the same
    information analytically: partial derivatives of the energy-optimal
    pattern size [We] (Equation 5) and of the minimum energy overhead
    [x + 2 sqrt (y z)] (Equation 3 at [We]) with respect to every model
    parameter, plus scale-free elasticities. Derivatives treat C and R
    as independent; the paper's C-sweeps move both, so use
    {!c_with_r_sweep} for that reading. *)

type parameter = C | R | V | Lambda | P_idle | P_io

type gradient = {
  d_w_energy : float;  (** dWe / d parameter. *)
  d_min_energy : float;
      (** d(min energy overhead) / d parameter, at the unconstrained
          optimum (envelope theorem: W re-optimizes). *)
}

val derivative :
  Params.t -> Power.t -> sigma1:float -> sigma2:float -> parameter ->
  gradient
(** Exact first-order-model derivatives. *)

val elasticity :
  Params.t -> Power.t -> sigma1:float -> sigma2:float -> parameter ->
  gradient
(** Relative sensitivities: [(p / f) * df/dp] for both quantities —
    "We grows 0.5% per 1% more C". Parameters whose current value is
    zero yield zero elasticities. *)

val c_with_r_sweep :
  Params.t -> Power.t -> sigma1:float -> sigma2:float -> gradient
(** Sensitivity to the paper's C-axis, which moves R together with C:
    the sum of the C and R gradients. *)

val parameter_value : Params.t -> Power.t -> parameter -> float
(** Current value of a parameter in the environment. *)

val all_elasticities :
  Params.t -> Power.t -> sigma1:float -> sigma2:float ->
  (parameter * gradient) list
(** Elasticities for all six parameters, in declaration order. *)

val parameter_name : parameter -> string
