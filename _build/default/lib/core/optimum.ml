type solution = {
  sigma1 : float;
  sigma2 : float;
  w_opt : float;
  w_energy : float;
  window : Feasibility.window;
  energy_overhead : float;
  time_overhead : float;
  bound_active : bool;
}

let w_energy p pw ~sigma1 ~sigma2 =
  First_order.unconstrained_minimizer (First_order.energy p pw ~sigma1 ~sigma2)

let solve_pair p pw ~rho ~sigma1 ~sigma2 =
  match Feasibility.window p ~rho ~sigma1 ~sigma2 with
  | None -> None
  | Some window ->
      let we = w_energy p pw ~sigma1 ~sigma2 in
      let w_opt = Feasibility.clamp window we in
      let energy = First_order.energy p pw ~sigma1 ~sigma2 in
      let time = First_order.time p ~sigma1 ~sigma2 in
      Some
        {
          sigma1;
          sigma2;
          w_opt;
          w_energy = we;
          window;
          energy_overhead = First_order.eval energy ~w:w_opt;
          time_overhead = First_order.eval time ~w:w_opt;
          bound_active = not (Feasibility.contains window we);
        }

let exact_overheads p pw s =
  ( Exact.time_overhead p ~w:s.w_opt ~sigma1:s.sigma1 ~sigma2:s.sigma2,
    Exact.energy_overhead p pw ~w:s.w_opt ~sigma1:s.sigma1 ~sigma2:s.sigma2 )

let pp_solution ppf s =
  Format.fprintf ppf
    "(s1=%g, s2=%g): Wopt=%.1f (We=%.1f, window=[%.1f, %.1f])@ E/W=%.2f \
     T/W=%.4f%s"
    s.sigma1 s.sigma2 s.w_opt s.w_energy s.window.Feasibility.w_min
    s.window.Feasibility.w_max s.energy_overhead s.time_overhead
    (if s.bound_active then " [bound active]" else "")
