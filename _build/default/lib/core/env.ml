type t = { params : Params.t; power : Power.t; speeds : float array }

let make ~params ~power ~speeds =
  let rec strictly_increasing = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
  in
  if speeds = [] then invalid_arg "Env.make: empty speed set";
  if List.exists (fun s -> not (Float.is_finite s) || s <= 0.) speeds then
    invalid_arg "Env.make: speeds must be positive finite floats";
  if not (strictly_increasing speeds) then
    invalid_arg "Env.make: speeds must be strictly increasing";
  { params; power; speeds = Array.of_list speeds }

let of_config_file (file : Platforms.Config_file.t) =
  let min_speed = List.fold_left Float.min infinity file.speeds in
  let p_io =
    match file.p_io with
    | Some p -> p
    | None -> file.kappa *. min_speed *. min_speed *. min_speed
  in
  make
    ~params:(Params.make ~lambda:file.lambda ~c:file.c ?r:file.r ~v:file.v ())
    ~power:(Power.make ~kappa:file.kappa ~p_idle:file.p_idle ~p_io)
    ~speeds:file.speeds

let of_config (config : Platforms.Config.t) =
  make
    ~params:(Params.of_platform ~r:config.r config.platform)
    ~power:(Power.of_config config)
    ~speeds:config.processor.Platforms.Processor.speeds

let speed_pairs t =
  let speeds = Array.to_list t.speeds in
  List.concat_map (fun s1 -> List.map (fun s2 -> (s1, s2)) speeds) speeds

let with_params t params = { t with params }
let with_power t power = { t with power }
let with_lambda t lambda = { t with params = Params.with_lambda t.params lambda }
let with_c t c = { t with params = Params.with_c t.params c }
let with_v t v = { t with params = Params.with_v t.params v }

let with_p_idle t p_idle =
  { t with power = Power.with_p_idle t.power p_idle }

let with_p_io t p_io = { t with power = Power.with_p_io t.power p_io }

let pp ppf t =
  Format.fprintf ppf "@[<v>params: %a@ power: %a@ speeds: %a@]" Params.pp
    t.params Power.pp t.power
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf s -> Format.fprintf ppf "%g" s))
    (Array.to_seq t.speeds)
