(** Extension of Section 5: both fail-stop and silent errors.

    Fail-stop errors (rate [lambda_f]) strike during computation and
    verification and are detected instantly; silent errors (rate
    [lambda_s]) strike during computation and are detected only by the
    end-of-pattern verification. Neither strikes during checkpoint or
    recovery.

    The expectations here are the closed-form solution of the paper's
    recursion (Equation 8). Note an erratum in the printed
    Propositions 4-5: they carry an extra [V/sigma2] re-execution term
    that does not follow from Equation (8); the recursion solution —
    implemented as {!expected_time}/{!expected_energy} — is the one
    whose expansion reproduces the paper's own Proposition 7 and
    Equations (9)-(10) leading coefficients, and the one the
    Monte-Carlo simulator confirms. The printed forms are provided as
    [*_printed] for comparison; both coincide when [lambda_f = 0.]
    (Propositions 1-3) and when [v = 0.]. *)

type t = private {
  c : float;  (** Checkpoint time, seconds. *)
  r : float;  (** Recovery time, seconds. *)
  v : float;  (** Verification time at unit speed, seconds. *)
  lambda_f : float;  (** Fail-stop rate, per second; >= 0. *)
  lambda_s : float;  (** Silent rate, per second; >= 0. *)
}

val make :
  c:float -> ?r:float -> v:float -> lambda_f:float -> lambda_s:float ->
  unit -> t
(** [r] defaults to [c]. At least one rate must be positive.
    @raise Invalid_argument on negative inputs or two zero rates. *)

val of_params : Params.t -> fail_stop_fraction:float -> t
(** Split the total rate of [params] as in Section 5.2:
    [lambda_f = f * lambda], [lambda_s = (1 - f) * lambda].
    @raise Invalid_argument if the fraction is outside [0, 1]. *)

val total_rate : t -> float
(** [lambda_f +. lambda_s]. *)

val t_lost : t -> exposure:float -> float
(** Expected time lost to a fail-stop error during a phase of duration
    [exposure], conditioned on the error striking:
    [1/lf - exposure / (e^(lf * exposure) - 1)], with the [lf -> 0]
    limit [exposure /. 2.]. *)

val success_probability : t -> w:float -> sigma:float -> float
(** Probability one attempt at speed [sigma] completes with neither a
    fail-stop error (exposure [(w+v)/sigma]) nor a silent error
    (exposure [w/sigma]). *)

val expected_time : t -> w:float -> sigma1:float -> sigma2:float -> float
(** Closed-form solution of Equation (8):
    [T = C + G1 + (1 - F1 S1) (G2 + R) / (F2 S2)] where
    [Gi = (1 - Fi)/lf] is the expected execution time of one attempt at
    speed [sigma_i] and [Fi Si] its success probability. *)

val expected_time_single : t -> w:float -> sigma:float -> float
(** [expected_time] with [sigma1 = sigma2 = sigma]. *)

val expected_energy :
  t -> Power.t -> w:float -> sigma1:float -> sigma2:float -> float
(** Energy counterpart: execution charged at [kappa s^3 + Pidle],
    checkpoint/recovery at [Pio + Pidle]. *)

val expected_time_printed :
  t -> w:float -> sigma1:float -> sigma2:float -> float
(** Proposition 4 exactly as printed in the paper (with the extra
    [V/sigma2] term). @raise Invalid_argument when [lambda_f = 0.]
    (the printed form divides by it). *)

val expected_energy_printed :
  t -> Power.t -> w:float -> sigma1:float -> sigma2:float -> float
(** Proposition 5 as printed. Same [lambda_f] restriction. *)

val first_order_time : t -> sigma1:float -> sigma2:float -> First_order.overhead
(** First-order expansion of {!expected_time}[/w] (the corrected
    Equation (9)): [linear = (lf+ls)/(s1 s2) - lf/(2 s1^2)] — which can
    be negative, in which case no interior optimum exists and
    {!First_order.unconstrained_minimizer} raises. *)

val first_order_energy :
  t -> Power.t -> sigma1:float -> sigma2:float -> First_order.overhead
(** First-order expansion of {!expected_energy}[/w] (Equation (10)
    leading coefficients). *)

val validity_ratio_bounds : t -> float * float
(** Section 5.2: the [(lo, hi)] bounds on [sigma2 /. sigma1] within
    which the first-order approach yields a solution (assuming
    [Pidle = 0.] for the lower bound):
    [((2 (1 + ls/lf))^(-1/2), 2 (1 + ls/lf))].
    @raise Invalid_argument when [lambda_f = 0.] (no fail-stop errors:
    the window is unbounded, as in Sections 3-4). *)

val first_order_applicable : t -> sigma1:float -> sigma2:float -> bool
(** Whether the time expansion has a positive [W] coefficient, i.e.
    [sigma2/sigma1 < 2 (1 + ls/lf)]; always [true] when
    [lambda_f = 0.]. *)

val optimal_w_numeric :
  ?bracket:float * float -> t -> sigma1:float -> sigma2:float ->
  float * float
(** Numerically minimize the exact time overhead [expected_time / w]
    over [w] (log-space grid + golden section). Returns
    [(w_opt, overhead)]. Default bracket spans 1e-3x to 1e3x the
    Young/Daly scale — wide enough to catch the Theta(lambda^(-2/3))
    regime of Theorem 2. *)
