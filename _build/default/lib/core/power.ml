type t = { kappa : float; p_idle : float; p_io : float }

let check name x =
  if not (Float.is_finite x) || x < 0. then
    invalid_arg ("Power: " ^ name ^ " must be a non-negative finite float")

let make ~kappa ~p_idle ~p_io =
  check "kappa" kappa;
  check "p_idle" p_idle;
  check "p_io" p_io;
  { kappa; p_idle; p_io }

let of_processor ?p_io (p : Platforms.Processor.t) =
  let p_io = Option.value p_io ~default:(Platforms.Processor.default_p_io p) in
  make ~kappa:p.kappa ~p_idle:p.p_idle ~p_io

let of_config (c : Platforms.Config.t) =
  of_processor ~p_io:c.p_io c.processor

let cpu t sigma = t.kappa *. sigma *. sigma *. sigma
let compute_total t sigma = t.p_idle +. cpu t sigma
let io_total t = t.p_idle +. t.p_io
let with_p_idle t p_idle = make ~kappa:t.kappa ~p_idle ~p_io:t.p_io
let with_p_io t p_io = make ~kappa:t.kappa ~p_idle:t.p_idle ~p_io

let pp ppf t =
  Format.fprintf ppf "{P(s)=%g s^3 + %g mW; Pio=%.4g mW}" t.kappa t.p_idle
    t.p_io
