(** Power model of Section 2.1.

    Computing at speed [sigma] draws [Pidle + Pcpu(sigma)] with
    [Pcpu(sigma) = kappa * sigma^3] (Yao/Demers/Shenker cubic law);
    checkpointing and recovering draw [Pidle + Pio]. All powers in mW,
    matching the paper's Table 2 units. *)

type t = private {
  kappa : float;  (** Dynamic power coefficient, mW; >= 0. *)
  p_idle : float;  (** Static power, mW; >= 0. *)
  p_io : float;  (** Dynamic I/O power, mW; >= 0. *)
}

val make : kappa:float -> p_idle:float -> p_io:float -> t
(** @raise Invalid_argument on negative or non-finite components. *)

val of_processor : ?p_io:float -> Platforms.Processor.t -> t
(** Power model of a Table 2 processor; [p_io] defaults to the paper's
    rule, the dynamic CPU power at the processor's slowest speed. *)

val of_config : Platforms.Config.t -> t
(** Power model of a full configuration (its [p_io] is already frozen). *)

val cpu : t -> float -> float
(** [cpu t sigma] is the dynamic compute power [kappa * sigma^3]. *)

val compute_total : t -> float -> float
(** [compute_total t sigma] is [p_idle + cpu t sigma] — the power drawn
    while computing or verifying at speed [sigma]. *)

val io_total : t -> float
(** [p_idle + p_io] — the power drawn during checkpoint and recovery. *)

val with_p_idle : t -> float -> t
val with_p_io : t -> float -> t

val pp : Format.formatter -> t -> unit
