(** The performance-bound constraint of Theorem 1.

    Requiring [T(W)/W <= rho] under the first-order model is the
    quadratic condition [a W^2 + b W + c <= 0] with [a = l/(s1 s2)],
    [b = 1/s1 + l (R/s1 + V/(s1 s2)) - rho] and [c = C + V/s1]; the
    admissible pattern sizes form the window [W1, W2] between the
    roots. Equation (6) gives the smallest bound [rho_min] for which
    the window is non-empty. *)

type window = private {
  w_min : float;  (** Lower root W1; > 0 whenever the window exists. *)
  w_max : float;  (** Upper root W2 >= W1. *)
}

val coefficients :
  Params.t -> rho:float -> sigma1:float -> sigma2:float ->
  float * float * float
(** [(a, b, c)] of Theorem 1. [a > 0.] and [c >= 0.] always;
    feasibility requires [b <= -2 sqrt (a c)]. *)

val window :
  Params.t -> rho:float -> sigma1:float -> sigma2:float -> window option
(** Admissible pattern-size window, or [None] when the bound [rho] is
    unattainable for this speed pair. A tangent (double-root) contact
    yields a degenerate window with [w_min = w_max]. *)

val rho_min : Params.t -> sigma1:float -> sigma2:float -> float
(** Equation (6): the minimum performance bound
    [rho_(i,j) = 1/s_i + 2 sqrt ((C + V/s_i) l/(s_i s_j))
                 + l (R/s_i + V/(s_i s_j))]
    for which BiCrit admits a solution with first speed [s_i] and
    re-execution speed [s_j]. *)

val is_feasible :
  Params.t -> rho:float -> sigma1:float -> sigma2:float -> bool
(** [is_feasible p ~rho ~sigma1 ~sigma2] iff [rho >= rho_min]. *)

val contains : window -> float -> bool
(** [contains win w] iff [w] lies in [w_min, w_max]. *)

val clamp : window -> float -> float
(** Project a pattern size onto the window. *)
