type t = { params : Params.t; w : float; sigma1 : float; sigma2 : float }

let make params ~w ~sigma1 ~sigma2 =
  if w <= 0. || not (Float.is_finite w) then
    invalid_arg "Distribution.make: pattern size must be positive and finite";
  if sigma1 <= 0. || sigma2 <= 0. then
    invalid_arg "Distribution.make: speeds must be positive";
  { params; w; sigma1; sigma2 }

let failure_probability t =
  -.Float.expm1 (-.t.params.Params.lambda *. t.w /. t.sigma1)

let reexecution_success t =
  exp (-.t.params.Params.lambda *. t.w /. t.sigma2)

let pmf t k =
  let p = failure_probability t in
  let q = reexecution_success t in
  if k < 0 then 0.
  else if k = 0 then 1. -. p
  else p *. ((1. -. q) ** float_of_int (k - 1)) *. q

let cdf_count t k =
  let p = failure_probability t in
  let q = reexecution_success t in
  if k < 0 then 0.
  else
    (* P(N <= k) = (1-p) + p (1 - (1-q)^k). *)
    1. -. (p *. ((1. -. q) ** float_of_int k))

let base_time t =
  ((t.w +. t.params.Params.v) /. t.sigma1) +. t.params.Params.c

let reexecution_cost t =
  ((t.w +. t.params.Params.v) /. t.sigma2) +. t.params.Params.r

let time_of_count t k =
  if k < 0 then invalid_arg "Distribution.time_of_count: negative count";
  base_time t +. (float_of_int k *. reexecution_cost t)

let energy_of_count t pw k =
  if k < 0 then invalid_arg "Distribution.energy_of_count: negative count";
  let exec1 =
    (t.w +. t.params.Params.v) /. t.sigma1 *. Power.compute_total pw t.sigma1
  in
  let per_reexec =
    ((t.w +. t.params.Params.v) /. t.sigma2 *. Power.compute_total pw t.sigma2)
    +. (t.params.Params.r *. Power.io_total pw)
  in
  exec1
  +. (t.params.Params.c *. Power.io_total pw)
  +. (float_of_int k *. per_reexec)

(* E[N] = p/q; Var[N] = Var[B M] with B ~ Bernoulli(p), M ~ Geom(q):
   E[(BM)^2] = p E[M^2] = p (2-q)/q^2, so
   Var = p (2-q)/q^2 - (p/q)^2. *)
let count_moments t =
  let p = failure_probability t in
  let q = reexecution_success t in
  let mean = p /. q in
  let variance = (p *. (2. -. q) /. (q *. q)) -. (mean *. mean) in
  (mean, variance)

let mean_time t =
  let mean_n, _ = count_moments t in
  base_time t +. (mean_n *. reexecution_cost t)

let variance_time t =
  let _, var_n = count_moments t in
  let cost = reexecution_cost t in
  var_n *. cost *. cost

let stddev_time t = sqrt (Float.max 0. (variance_time t))

let mean_energy t pw =
  let mean_n, _ = count_moments t in
  energy_of_count t pw 0 +. (mean_n *. (energy_of_count t pw 1 -. energy_of_count t pw 0))

let variance_energy t pw =
  let _, var_n = count_moments t in
  let per = energy_of_count t pw 1 -. energy_of_count t pw 0 in
  var_n *. per *. per

let cdf_time t x =
  if x < base_time t then 0.
  else
    let k =
      int_of_float (Float.floor ((x -. base_time t) /. reexecution_cost t))
    in
    cdf_count t k

let quantile_time t p =
  if p < 0. || p >= 1. then
    invalid_arg "Distribution.quantile_time: p must be in [0, 1)";
  let rec search k =
    if cdf_count t k >= p then time_of_count t k else search (k + 1)
  in
  search 0

let tail_count t ~epsilon =
  if epsilon <= 0. then invalid_arg "Distribution.tail_count: epsilon <= 0";
  let rec search k =
    if 1. -. cdf_count t k <= epsilon then k else search (k + 1)
  in
  search 0
