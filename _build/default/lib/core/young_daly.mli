(** Classical checkpointing-period baselines (Young 1974, Daly 2006).

    The paper positions its result against these: for fail-stop errors
    the time-optimal period is [sqrt (2 C / lambda)]; for silent errors
    with verified checkpoints it is [sqrt ((V + C) / lambda)] — the
    factor 2 disappears because a silent error always wastes the whole
    period, while a fail-stop error wastes half on average. *)

val failstop_period : c:float -> lambda:float -> float
(** Young/Daly: [sqrt (2 c / lambda)] — optimal work between
    checkpoints at unit speed under fail-stop errors.
    @raise Invalid_argument on non-positive [c] or [lambda]. *)

val silent_period : c:float -> v:float -> lambda:float -> float
(** [sqrt ((v +. c) /. lambda)] — optimal period with silent errors and
    verified checkpoints, at unit speed.
    @raise Invalid_argument on negative [v], non-positive [c] or
    [lambda]. *)

val silent_period_at_speed : Params.t -> sigma:float -> float
(** Speed-aware single-speed generalization from Equation (2) with
    [s1 = s2 = sigma]: [W* = sigma * sqrt ((C + V/sigma) / lambda)].
    Reduces to {!silent_period} at [sigma = 1.]. *)

val time_overhead_at : Params.t -> sigma:float -> w:float -> float
(** First-order time overhead of period [w] at speed [sigma] (silent
    errors, single speed) — for comparing baseline periods. *)

val failstop_expected_time :
  c:float -> r:float -> lambda:float -> sigma:float -> w:float -> float
(** Exact expected pattern time under fail-stop errors only (no
    verification), single speed:
    [C + (e^(l w / sigma) - 1) (1/l + R)] — the classical renewal
    formula, also the [lambda_s = 0], [V = 0], [sigma2 = sigma1] limit
    of the mixed model of {!Mixed}.
    @raise Invalid_argument on non-positive [lambda], [sigma] or [w],
    or negative [c] or [r]. *)
