(** Continuous-DVFS relaxation of BiCrit.

    The paper restricts speeds to a discrete ladder (Table 2); real
    DVFS hardware quantizes a continuous frequency range. This module
    solves BiCrit with [sigma1, sigma2] free in a closed interval —
    the lower bound on what any ladder can achieve — so the cost of
    discreteness can be measured (see {!Experiments.Ablations}).

    Method: for fixed speeds the inner problem is Theorem 1 in closed
    form; the outer 2-D speed search runs a dense grid pass followed by
    rounds of coordinate-wise golden-section refinement (the landscape
    is smooth between feasibility boundaries). *)

type solution = {
  sigma1 : float;
  sigma2 : float;
  inner : Optimum.solution;  (** Theorem 1 solution at the optimum. *)
}

val solve :
  ?bounds:float * float -> ?grid:int -> ?refinement_rounds:int ->
  Params.t -> Power.t -> rho:float -> solution option
(** [solve params power ~rho] minimizes the first-order energy overhead
    over speed pairs in [bounds] (default (0.05, 1.)) x same. [grid]
    (default 48) sets the initial resolution; [refinement_rounds]
    (default 4) the coordinate-descent polish. [None] when no pair in
    the box meets the bound.
    @raise Invalid_argument on an empty or non-positive speed box, or
    [rho <= 0.]. *)

val energy_gap_vs_discrete : Env.t -> rho:float -> float option
(** Relative energy excess of the environment's discrete ladder over
    the continuous relaxation on the ladder's own range:
    [(E_discrete - E_continuous) / E_continuous]. [None] if either
    problem is infeasible. Always >= -epsilon (the ladder is a subset
    of the box). *)
