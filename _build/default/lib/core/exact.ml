let check_pattern ~w ~sigma1 ~sigma2 =
  if w <= 0. || not (Float.is_finite w) then
    invalid_arg "Exact: pattern size w must be positive and finite";
  if sigma1 <= 0. || sigma2 <= 0. then
    invalid_arg "Exact: speeds must be positive"

let error_probability (p : Params.t) ~w ~sigma =
  check_pattern ~w ~sigma1:sigma ~sigma2:sigma;
  -.Float.expm1 (-.p.lambda *. w /. sigma)

let expected_time_single (p : Params.t) ~w ~sigma =
  check_pattern ~w ~sigma1:sigma ~sigma2:sigma;
  let growth = exp (p.lambda *. w /. sigma) in
  p.c +. (growth *. (w +. p.v) /. sigma) +. (Float.expm1 (p.lambda *. w /. sigma) *. p.r)

let expected_reexecutions (p : Params.t) ~w ~sigma1 ~sigma2 =
  check_pattern ~w ~sigma1 ~sigma2;
  -.Float.expm1 (-.p.lambda *. w /. sigma1) *. exp (p.lambda *. w /. sigma2)

let expected_time (p : Params.t) ~w ~sigma1 ~sigma2 =
  let reexec = expected_reexecutions p ~w ~sigma1 ~sigma2 in
  p.c +. ((w +. p.v) /. sigma1) +. (reexec *. (p.r +. ((w +. p.v) /. sigma2)))

let expected_energy (p : Params.t) (pw : Power.t) ~w ~sigma1 ~sigma2 =
  let reexec = expected_reexecutions p ~w ~sigma1 ~sigma2 in
  ((p.c +. (reexec *. p.r)) *. Power.io_total pw)
  +. ((w +. p.v) /. sigma1 *. Power.compute_total pw sigma1)
  +. ((w +. p.v) /. sigma2 *. reexec *. Power.compute_total pw sigma2)

let time_overhead p ~w ~sigma1 ~sigma2 =
  expected_time p ~w ~sigma1 ~sigma2 /. w

let energy_overhead p pw ~w ~sigma1 ~sigma2 =
  expected_energy p pw ~w ~sigma1 ~sigma2 /. w

let total_makespan p ~w ~sigma1 ~sigma2 ~w_base =
  if w_base < 0. then invalid_arg "Exact.total_makespan: negative w_base";
  time_overhead p ~w ~sigma1 ~sigma2 *. w_base

let total_energy p pw ~w ~sigma1 ~sigma2 ~w_base =
  if w_base < 0. then invalid_arg "Exact.total_energy: negative w_base";
  energy_overhead p pw ~w ~sigma1 ~sigma2 *. w_base
