(** Full distribution of the pattern cost (silent errors).

    The paper works in expectation; this module gives the whole law.
    Under silent errors every attempt has a deterministic duration, so
    the pattern time is a function of the re-execution count N alone:

    - [P(N = 0) = e^(-l W / s1)];
    - [P(N = k) = (1 - e^(-l W / s1)) (1-q)^(k-1) q] for [k >= 1],
      with [q = e^(-l W / s2)] the per-re-execution success probability
      (a Bernoulli first attempt followed by a geometric number of
      re-executions);
    - [T(N) = (W+V)/s1 + C + N ((W+V)/s2 + R)], and similarly for
      energy with the matching powers.

    Everything — pmf, cdf, variance, quantiles — follows in closed
    form; the Monte-Carlo tests check the simulator's *distribution*
    (not just its mean) against it. *)

type t = private {
  params : Params.t;
  w : float;
  sigma1 : float;
  sigma2 : float;
}

val make : Params.t -> w:float -> sigma1:float -> sigma2:float -> t
(** @raise Invalid_argument on non-positive [w] or speeds. *)

val failure_probability : t -> float
(** Probability the first attempt fails, [1 - e^(-l W / s1)]. *)

val reexecution_success : t -> float
(** Per-re-execution success probability [q = e^(-l W / s2)]. *)

val pmf : t -> int -> float
(** [pmf t k] is [P(N = k)], the probability of exactly [k]
    re-executions; 0. for negative [k]. *)

val cdf_count : t -> int -> float
(** [P(N <= k)] in closed form (geometric tail). *)

val time_of_count : t -> int -> float
(** Pattern time when exactly [k] re-executions happen.
    @raise Invalid_argument on negative [k]. *)

val energy_of_count : t -> Power.t -> int -> float
(** Pattern energy for [k] re-executions. *)

val mean_time : t -> float
(** Equals {!Exact.expected_time} (tested). *)

val variance_time : t -> float
(** Closed form: [cost^2 * Var(B M)] with [B] Bernoulli and [M]
    geometric, [cost = (W+V)/s2 + R]. *)

val stddev_time : t -> float

val mean_energy : t -> Power.t -> float
val variance_energy : t -> Power.t -> float

val cdf_time : t -> float -> float
(** [P(T <= x)] — a right-continuous step function. *)

val quantile_time : t -> float -> float
(** Smallest pattern time [x] with [cdf_time t x >= p].
    @raise Invalid_argument if [p] is outside [0, 1). *)

val tail_count : t -> epsilon:float -> int
(** Smallest [k] with [P(N > k) <= epsilon] — where to truncate sums
    over the distribution. @raise Invalid_argument if [epsilon <= 0.]. *)
