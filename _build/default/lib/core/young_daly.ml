let require_positive name x =
  if x <= 0. || not (Float.is_finite x) then
    invalid_arg ("Young_daly: " ^ name ^ " must be positive and finite")

let require_non_negative name x =
  if x < 0. || not (Float.is_finite x) then
    invalid_arg ("Young_daly: " ^ name ^ " must be non-negative and finite")

let failstop_period ~c ~lambda =
  require_positive "c" c;
  require_positive "lambda" lambda;
  sqrt (2. *. c /. lambda)

let silent_period ~c ~v ~lambda =
  require_positive "c" c;
  require_non_negative "v" v;
  require_positive "lambda" lambda;
  sqrt ((v +. c) /. lambda)

let silent_period_at_speed (p : Params.t) ~sigma =
  require_positive "sigma" sigma;
  First_order.unconstrained_minimizer
    (First_order.time p ~sigma1:sigma ~sigma2:sigma)

let time_overhead_at (p : Params.t) ~sigma ~w =
  require_positive "sigma" sigma;
  First_order.eval (First_order.time p ~sigma1:sigma ~sigma2:sigma) ~w

let failstop_expected_time ~c ~r ~lambda ~sigma ~w =
  require_non_negative "c" c;
  require_non_negative "r" r;
  require_positive "lambda" lambda;
  require_positive "sigma" sigma;
  require_positive "w" w;
  c +. (Float.expm1 (lambda *. w /. sigma) *. ((1. /. lambda) +. r))
