type solution = {
  sigma1 : float;
  sigma2 : float;
  inner : Optimum.solution;
}

let objective params power ~rho (sigma1, sigma2) =
  match Optimum.solve_pair params power ~rho ~sigma1 ~sigma2 with
  | Some s -> Some s.Optimum.energy_overhead
  | None -> None

(* Golden-section along one coordinate, treating infeasible speeds as
   +infinity (the landscape is quasi-convex between feasibility
   boundaries, and the incumbent is feasible, so the refinement never
   escapes the feasible region). *)
let refine_axis f ~lo ~hi x0 =
  let value x = match f x with Some v -> v | None -> infinity in
  (* Bracket around the incumbent: a short local search beats global
     golden here because feasibility holes make the axis non-unimodal. *)
  let width = (hi -. lo) /. 8. in
  let a = Float.max lo (x0 -. width) and b = Float.min hi (x0 +. width) in
  if b <= a then (x0, value x0)
  else Numerics.Minimize.golden_section ~f:value ~lo:a ~hi:b ()

let solve ?(bounds = (0.05, 1.)) ?(grid = 48) ?(refinement_rounds = 4) params
    power ~rho =
  let lo, hi = bounds in
  if lo <= 0. || lo >= hi then
    invalid_arg "Continuous.solve: invalid speed bounds";
  if rho <= 0. then invalid_arg "Continuous.solve: rho must be positive";
  if grid < 4 then invalid_arg "Continuous.solve: grid too coarse";
  let axis = Numerics.Axis.linspace ~lo ~hi ~n:grid in
  let best = ref None in
  List.iter
    (fun sigma1 ->
      List.iter
        (fun sigma2 ->
          match objective params power ~rho (sigma1, sigma2) with
          | None -> ()
          | Some v -> begin
              match !best with
              | Some (_, _, incumbent) when incumbent <= v -> ()
              | Some _ | None -> best := Some (sigma1, sigma2, v)
            end)
        axis)
    axis;
  match !best with
  | None -> None
  | Some (s1, s2, _) ->
      let s1 = ref s1 and s2 = ref s2 in
      for _ = 1 to refinement_rounds do
        let x, _ =
          refine_axis
            (fun x -> objective params power ~rho (x, !s2))
            ~lo ~hi !s1
        in
        if objective params power ~rho (x, !s2) <> None then s1 := x;
        let y, _ =
          refine_axis
            (fun y -> objective params power ~rho (!s1, y))
            ~lo ~hi !s2
        in
        if objective params power ~rho (!s1, y) <> None then s2 := y
      done;
      Option.map
        (fun inner -> { sigma1 = !s1; sigma2 = !s2; inner })
        (Optimum.solve_pair params power ~rho ~sigma1:!s1 ~sigma2:!s2)

let energy_gap_vs_discrete (env : Env.t) ~rho =
  let ladder_lo = env.speeds.(0) in
  let ladder_hi = env.speeds.(Array.length env.speeds - 1) in
  match
    ( Bicrit.solve env ~rho,
      solve ~bounds:(ladder_lo, ladder_hi) env.params env.power ~rho )
  with
  | Some discrete, Some continuous ->
      let d = discrete.best.Optimum.energy_overhead in
      let c = continuous.inner.Optimum.energy_overhead in
      Some ((d -. c) /. c)
  | None, _ | _, None -> None
