(** Baselines from the paper's related work (Section 6), implemented
    for comparison.

    Two contrasts the paper draws:

    - Meneses, Sarood & Kale (SBAC-PAD'12) compute both time-optimal
      and energy-optimal periods but without DVFS — a mono-criterion
      choice between two fixed periods. Here both periods come from the
      paper's own Equations (2)-(3) at a single speed, so the penalty
      of running the time-optimal (Young/Daly) period when energy is
      what matters is measurable.
    - Aupy, Benoit, Renaud-Goud & Robert (IGCC'13) assume success after
      the FIRST re-execution (a real-time model). The paper argues HPC
      must account for arbitrarily many re-executions; this module
      implements the truncated model and its *risk* — the probability
      that one re-execution is not enough — so the argument becomes a
      number. *)

val time_optimal_period : Params.t -> sigma:float -> float
(** Single-speed period minimizing the time overhead (Equation 2
    diagonal) — the Young/Daly-style choice. *)

val energy_optimal_period : Params.t -> Power.t -> sigma:float -> float
(** Single-speed period minimizing the energy overhead (Equation 3
    diagonal) — the Meneses-style energy period. *)

val period_mismatch_penalty : Params.t -> Power.t -> sigma:float -> float
(** Relative energy excess of running the time-optimal period when the
    energy-optimal one was available:
    [(E(W_T) - E(W_E)) / E(W_E) >= 0]. Zero iff the two periods
    coincide (they do when checkpoint power equals compute power
    in the right proportion; generally they differ). *)

(** The truncated (at most one re-execution) model of [2]. *)
module Single_reexecution : sig
  val expected_time :
    Params.t -> w:float -> sigma1:float -> sigma2:float -> float
  (** Expected pattern time pretending the first re-execution always
      succeeds: [T = C + (W+V)/s1 + p1 (R + (W+V)/s2)]. Always
      underestimates Proposition 2. *)

  val expected_energy :
    Params.t -> Power.t -> w:float -> sigma1:float -> sigma2:float -> float
  (** Energy under the same truncation; underestimates Proposition 3. *)

  val risk : Params.t -> w:float -> sigma1:float -> sigma2:float -> float
  (** Probability the truncation is wrong for a given pattern: both
      the first execution AND its re-execution fail,
      [p(W/s1) * p(W/s2)]. *)

  val application_risk :
    Params.t -> w:float -> sigma1:float -> sigma2:float -> w_base:float ->
    float
  (** Probability at least one of the [ceil (w_base/w)] patterns needs
      a second re-execution during the whole application — the chance
      the real-time schedulability analysis built on this model is
      invalid for an HPC run. *)

  val underestimate :
    Params.t -> w:float -> sigma1:float -> sigma2:float -> float
  (** Relative amount by which the truncated expected time
      underestimates the true Proposition 2 time:
      [(T_true - T_trunc) / T_true >= 0]. *)
end
