let time_optimal_period (p : Params.t) ~sigma =
  First_order.unconstrained_minimizer
    (First_order.time p ~sigma1:sigma ~sigma2:sigma)

let energy_optimal_period (p : Params.t) pw ~sigma =
  First_order.unconstrained_minimizer
    (First_order.energy p pw ~sigma1:sigma ~sigma2:sigma)

let period_mismatch_penalty (p : Params.t) pw ~sigma =
  let o = First_order.energy p pw ~sigma1:sigma ~sigma2:sigma in
  let w_time = time_optimal_period p ~sigma in
  let w_energy = energy_optimal_period p pw ~sigma in
  let e_time = First_order.eval o ~w:w_time in
  let e_energy = First_order.eval o ~w:w_energy in
  (e_time -. e_energy) /. e_energy

module Single_reexecution = struct
  let check ~w ~sigma1 ~sigma2 =
    if w <= 0. || not (Float.is_finite w) then
      invalid_arg "Single_reexecution: w must be positive and finite";
    if sigma1 <= 0. || sigma2 <= 0. then
      invalid_arg "Single_reexecution: speeds must be positive"

  let failure (p : Params.t) ~w ~sigma =
    -.Float.expm1 (-.p.lambda *. w /. sigma)

  let expected_time (p : Params.t) ~w ~sigma1 ~sigma2 =
    check ~w ~sigma1 ~sigma2;
    let p1 = failure p ~w ~sigma:sigma1 in
    p.c +. ((w +. p.v) /. sigma1) +. (p1 *. (p.r +. ((w +. p.v) /. sigma2)))

  let expected_energy (p : Params.t) pw ~w ~sigma1 ~sigma2 =
    check ~w ~sigma1 ~sigma2;
    let p1 = failure p ~w ~sigma:sigma1 in
    let io = Power.io_total pw in
    (p.c *. io)
    +. ((w +. p.v) /. sigma1 *. Power.compute_total pw sigma1)
    +. (p1
       *. ((p.r *. io)
          +. ((w +. p.v) /. sigma2 *. Power.compute_total pw sigma2)))

  let risk (p : Params.t) ~w ~sigma1 ~sigma2 =
    check ~w ~sigma1 ~sigma2;
    failure p ~w ~sigma:sigma1 *. failure p ~w ~sigma:sigma2

  let application_risk p ~w ~sigma1 ~sigma2 ~w_base =
    if w_base <= 0. then
      invalid_arg "Single_reexecution.application_risk: non-positive w_base";
    let patterns = Float.ceil (w_base /. w) in
    -.Float.expm1 (patterns *. Float.log1p (-.risk p ~w ~sigma1 ~sigma2))

  let underestimate p ~w ~sigma1 ~sigma2 =
    let truncated = expected_time p ~w ~sigma1 ~sigma2 in
    let true_time = Exact.expected_time p ~w ~sigma1 ~sigma2 in
    (true_time -. truncated) /. true_time
end
