(** First-order (Young/Daly-style) approximations of the per-work-unit
    overheads — Equations (2) and (3) of the paper.

    Both overheads take the shape [const + linear * W + inverse / W],
    obtained by the Taylor expansion [e^(lW) = 1 + lW + O(l^2 W^2)];
    the unconstrained minimizer is [sqrt (inverse / linear)], the
    generalization of the Young/Daly period. *)

type overhead = {
  const : float;  (** Coefficient of W^0 — the x of the paper. *)
  linear : float;  (** Coefficient of W — the y of the paper. *)
  inverse : float;  (** Coefficient of 1/W — the z of the paper. *)
}

val eval : overhead -> w:float -> float
(** [eval o ~w] is [o.const +. o.linear *. w +. o.inverse /. w].
    @raise Invalid_argument if [w <= 0.]. *)

val unconstrained_minimizer : overhead -> float
(** [sqrt (inverse /. linear)] — where the overhead is smallest,
    ignoring any performance bound.
    @raise Invalid_argument if [linear <= 0.] (the expansion then has
    no interior minimum; see the mixed-error discussion in Section 5). *)

val minimum_value : overhead -> float
(** [const +. 2. *. sqrt (linear *. inverse)] — the overhead at the
    unconstrained minimizer. Same precondition as
    {!unconstrained_minimizer}. *)

val time : Params.t -> sigma1:float -> sigma2:float -> overhead
(** Equation (2):
    [T/W ~ 1/s1 + l/(s1 s2) W + (l R/s1 + l V/(s1 s2)) ... ] — precisely
    [const = 1/s1 + l(R/s1 + V/(s1 s2))], [linear = l/(s1 s2)],
    [inverse = C + V/s1]. *)

val energy : Params.t -> Power.t -> sigma1:float -> sigma2:float -> overhead
(** Equation (3):
    [const = (k s1^3 + Pidle)/s1 + l R (Pio+Pidle)/s1
             + l V (k s2^3 + Pidle)/(s1 s2)],
    [linear = l (k s2^3 + Pidle)/(s1 s2)],
    [inverse = C (Pio+Pidle) + V (k s1^3 + Pidle)/s1].
    Note: the paper prints [k s1^3] in the [l V] cross term; expanding
    its own Proposition 3 yields [k s2^3] (the re-executed verification
    runs at [sigma2]), which is what this function uses. The deviation
    is O(lambda V) — below the printed precision of every table in the
    paper. *)
