type window = { w_min : float; w_max : float }

let coefficients p ~rho ~sigma1 ~sigma2 =
  let o = First_order.time p ~sigma1 ~sigma2 in
  (o.linear, o.const -. rho, o.inverse)

let rho_min (p : Params.t) ~sigma1 ~sigma2 =
  let o = First_order.time p ~sigma1 ~sigma2 in
  First_order.minimum_value o

let is_feasible p ~rho ~sigma1 ~sigma2 = rho >= rho_min p ~sigma1 ~sigma2

let window p ~rho ~sigma1 ~sigma2 =
  let a, b, c = coefficients p ~rho ~sigma1 ~sigma2 in
  (* Feasibility needs b <= -2 sqrt(ac): with a > 0 and c >= 0, real
     roots with b < 0 are automatically both positive (sum -b/a > 0,
     product c/a >= 0). The rho >= rho_min test is the same condition
     expressed without the discriminant, and is better conditioned. *)
  if not (is_feasible p ~rho ~sigma1 ~sigma2) then None
  else
    match Numerics.Roots.quadratic ~a ~b ~c with
    | Numerics.Roots.No_real_root -> None
    | Numerics.Roots.Double_root w ->
        if w > 0. then Some { w_min = w; w_max = w } else None
    | Numerics.Roots.Two_roots (w1, w2) ->
        if w2 <= 0. then None
        else Some { w_min = Float.max w1 Float.min_float; w_max = w2 }

let contains win w = w >= win.w_min && w <= win.w_max

let clamp win w = Float.min win.w_max (Float.max win.w_min w)
