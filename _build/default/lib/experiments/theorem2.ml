type result = {
  c : float;
  sigma : float;
  lambdas : float list;
  w_twice : (float * float) list;
  w_same : (float * float) list;
  w_analytic : (float * float) list;
  slope_twice : float;
  slope_same : float;
  max_analytic_gap : float;
}

let expected_slope_twice = -2. /. 3.
let expected_slope_same = -0.5

let run ?(c = 300.) ?(r = 300.) ?(sigma = 1.) ?lambdas () =
  let lambdas =
    match lambdas with
    | Some ls -> ls
    | None -> Numerics.Axis.logspace ~lo:1e-9 ~hi:1e-6 ~n:13
  in
  if lambdas = [] then invalid_arg "Theorem2.run: empty lambda grid";
  let minimize lambda sigma2 =
    let w, _ =
      Core.Second_order.w_opt_exact ~c ~r ~lambda ~sigma1:sigma ~sigma2
    in
    (lambda, w)
  in
  let w_twice = List.map (fun l -> minimize l (2. *. sigma)) lambdas in
  let w_same = List.map (fun l -> minimize l sigma) lambdas in
  let w_analytic =
    List.map
      (fun l ->
        (l, Core.Second_order.w_opt_twice_faster ~c ~lambda:l ~sigma))
      lambdas
  in
  let slope pts = (Numerics.Regression.log_log_fit pts).Numerics.Regression.slope in
  let max_analytic_gap =
    List.fold_left2
      (fun acc (_, numeric) (_, analytic) ->
        Float.max acc (Float.abs (numeric -. analytic) /. analytic))
      0. w_twice w_analytic
  in
  {
    c;
    sigma;
    lambdas;
    w_twice;
    w_same;
    w_analytic;
    slope_twice = slope w_twice;
    slope_same = slope w_same;
    max_analytic_gap;
  }
