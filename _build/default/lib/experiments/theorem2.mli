(** Theorem 2 scaling experiment.

    With fail-stop errors only and re-execution twice faster, the
    optimal pattern size scales as Theta(lambda^(-2/3)) instead of the
    Young/Daly Theta(lambda^(-1/2)). The experiment minimizes the
    *exact* expected time overhead numerically over a grid of lambdas
    and fits log-log slopes — for [sigma2 = 2 sigma1] the fitted
    exponent approaches -2/3, for [sigma2 = sigma1] it approaches -1/2,
    and the [sigma2 = 2 sigma1] minimizer matches the closed form
    [(12 C / lambda^2)^(1/3) sigma]. *)

type result = {
  c : float;
  sigma : float;
  lambdas : float list;
  w_twice : (float * float) list;
      (** (lambda, exact numeric Wopt) with sigma2 = 2 sigma. *)
  w_same : (float * float) list;  (** Same with sigma2 = sigma. *)
  w_analytic : (float * float) list;
      (** (lambda, Theorem 2 closed form (12C/l^2)^(1/3) sigma). *)
  slope_twice : float;  (** Fitted exponent, expected ~ -2/3. *)
  slope_same : float;  (** Fitted exponent, expected ~ -1/2. *)
  max_analytic_gap : float;
      (** max relative |numeric - closed form| / closed form over the
          grid, with sigma2 = 2 sigma. *)
}

val run :
  ?c:float -> ?r:float -> ?sigma:float -> ?lambdas:float list -> unit ->
  result
(** Defaults: [c = r = 300.] (Hera's checkpoint), [sigma = 1.],
    lambdas logarithmic on [1e-9, 1e-6] (small enough for the
    second-order expansion to be the dominant regime). *)

val expected_slope_twice : float
(** -2/3. *)

val expected_slope_same : float
(** -1/2. *)
