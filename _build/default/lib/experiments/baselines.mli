(** Comparisons against the Section 6 related-work baselines, run over
    the eight paper configurations. *)

type meneses_row = {
  config : string;
  sigma : float;  (** Single speed used (the best single speed at rho=3). *)
  w_time : float;  (** Time-optimal (Young/Daly) period. *)
  w_energy : float;  (** Energy-optimal period. *)
  penalty : float;  (** Energy excess of running the time period. *)
}

val meneses : ?rho:float -> unit -> meneses_row list
(** Time-vs-energy period mismatch per configuration. *)

type truncation_row = {
  config : string;
  w : float;  (** BiCrit-optimal pattern at rho. *)
  pattern_risk : float;  (** P(one re-execution is not enough) per pattern. *)
  month_risk : float;
      (** Same risk compounded over a 30-day job
          (w_base = 2,592,000 work units). *)
  underestimate : float;
      (** Relative expected-time underestimate of the truncated model. *)
}

val single_reexecution : ?rho:float -> unit -> truncation_row list
(** How wrong the "success after the first re-execution" assumption is
    at each configuration's own optimum. *)

val render_meneses : meneses_row list -> string
val render_truncation : truncation_row list -> string
