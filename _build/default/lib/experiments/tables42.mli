(** The four tables of Section 4.2 (Hera/XScale).

    For each performance bound rho in {8, 3, 1.775, 1.4} and each first
    speed sigma1, the paper prints the best re-execution speed sigma2,
    the optimal pattern size Wopt and the energy overhead E/W — or "-"
    when the bound is unattainable. These are closed-form, so the
    reproduction target is numeric equality (to the paper's printed
    rounding). *)

type row = {
  sigma1 : float;
  best : (float * float * float) option;
      (** [(sigma2, w_opt, energy_overhead)], [None] = infeasible. *)
}

type table = {
  rho : float;
  rows : row list;  (** One row per speed, ascending sigma1. *)
  best_pair : (float * float) option;
      (** The bold overall optimum of the table. *)
}

val paper : table list
(** The four tables exactly as printed in the paper. *)

val compute : Core.Env.t -> rho:float -> table
(** Recompute a table from the model. The intended environment is
    [Core.Env.of_config (Platforms.Config.find "hera/xscale")], but the
    function works for any environment. *)

val compare : Core.Env.t -> table -> Report.Compare.entry list
(** Paper-vs-measured entries for every printed cell of [table]
    (which should be one of {!paper}). *)

val render : table -> string
(** ASCII rendering in the paper's column layout. *)
