let env_of config =
  match Platforms.Config.find config with
  | Some c -> Core.Env.of_config c
  | None -> invalid_arg ("Extensions: unknown configuration " ^ config)

type mixed_point = {
  fraction : float;
  solution : Core.Mixed_bicrit.solution option;
  single_speed : Core.Mixed_bicrit.solution option;
}

let fraction_sweep ?(config = "hera/xscale") ?(rho = 3.) ?fractions () =
  let fractions =
    match fractions with
    | Some fs -> fs
    | None -> Numerics.Axis.linspace ~lo:0. ~hi:1. ~n:11
  in
  let env = env_of config in
  List.map
    (fun fraction ->
      let best single_speed =
        Option.map
          (fun (r : Core.Mixed_bicrit.result) -> r.best)
          (Core.Mixed_bicrit.of_env ~single_speed env
             ~fail_stop_fraction:fraction ~rho)
      in
      {
        fraction;
        solution = best false;
        single_speed = best true;
      })
    fractions

let silent_limit_matches_closed_form ?(config = "hera/xscale") ?(rho = 3.) ()
    =
  let env = env_of config in
  let numeric =
    Core.Mixed_bicrit.of_env env ~fail_stop_fraction:0. ~rho
  in
  let closed = Core.Bicrit.solve env ~rho in
  match (numeric, closed) with
  | Some n, Some c ->
      Numerics.Float_utils.relative_error
        ~expected:c.best.Core.Optimum.energy_overhead
        n.best.Core.Mixed_bicrit.energy_overhead
  | None, _ | _, None -> infinity

let coverage_beyond_validity ?(config = "hera/xscale") ?(rho = 3.) ~fraction
    () =
  if fraction <= 0. then
    invalid_arg "Extensions.coverage_beyond_validity: needs fail-stop errors";
  let env = env_of config in
  let m = Core.Mixed.of_params env.params ~fail_stop_fraction:fraction in
  let lo, hi = Core.Mixed.validity_ratio_bounds m in
  let outside =
    List.filter
      (fun (sigma1, sigma2) ->
        let ratio = sigma2 /. sigma1 in
        ratio <= lo || ratio >= hi)
      (Core.Env.speed_pairs env)
  in
  let solved =
    List.filter
      (fun (sigma1, sigma2) ->
        Option.is_some
          (Core.Mixed_bicrit.solve_pair m env.power ~rho ~sigma1 ~sigma2))
      outside
  in
  (List.length solved, List.length outside)

type verif_point = {
  verifications : int;
  solution : Core.Multi_verif.solution option;
}

let scaled_env ?(config = "hera/xscale") ~lambda_scale () =
  let env = env_of config in
  Core.Env.with_lambda env
    (env.params.Core.Params.lambda *. lambda_scale)

let verification_sweep ?config ?(rho = 3.) ?(lambda_scale = 100.)
    ?(max_verifications = 8) () =
  let env = scaled_env ?config ~lambda_scale () in
  List.init max_verifications (fun i ->
      let m = i + 1 in
      let model = Core.Multi_verif.make env.params ~verifications:m in
      let candidates =
        List.concat_map
          (fun sigma1 ->
            List.filter_map
              (fun sigma2 ->
                Core.Multi_verif.solve_pattern model env.power ~rho ~sigma1
                  ~sigma2)
              (Array.to_list env.speeds))
          (Array.to_list env.speeds)
      in
      {
        verifications = m;
        solution =
          Option.map fst
            (Numerics.Minimize.argmin_by
               (fun (s : Core.Multi_verif.solution) -> s.energy_overhead)
               candidates);
      })

let best_verification_count ?config ?rho ?lambda_scale ?max_verifications ()
    =
  let points =
    verification_sweep ?config ?rho ?lambda_scale ?max_verifications ()
  in
  let feasible =
    List.filter_map
      (fun p -> Option.map (fun s -> (p.verifications, s)) p.solution)
      points
  in
  match
    Numerics.Minimize.argmin_by
      (fun (_, (s : Core.Multi_verif.solution)) -> s.energy_overhead)
      feasible
  with
  | Some ((m, _), _) -> m
  | None -> invalid_arg "Extensions.best_verification_count: infeasible"
