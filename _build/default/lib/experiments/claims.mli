(** The paper's qualitative claims (Section 4.3), checked mechanically.

    Each claim function recomputes the relevant sweep and returns
    paper-vs-measured entries. [all ()] is the full battery used by the
    bench harness and EXPERIMENTS.md. *)

val headline_saving : ?points:int -> unit -> Report.Compare.entry list
(** "Up to 35% improvement in energy overhead" — largest two-speed
    saving across the Fig 2 (C) and Fig 3 (V) Atlas/Crusoe sweeps. *)

val fig2_pair_motion : ?points:int -> unit -> Report.Compare.entry list
(** Fig 2: the optimal pair starts at (0.45, 0.45) for small C and
    reaches (0.45, 0.8) at C = 5000; sigma1 never moves. *)

val fig3_stabilizes : ?points:int -> unit -> Report.Compare.entry list
(** Fig 3: the pair stabilizes at (0.6, 0.45) when V reaches 5000. *)

val fig4_lambda_shape : ?points:int -> unit -> Report.Compare.entry list
(** Fig 4: Wopt decreases with lambda while both speeds ramp up to the
    maximum. *)

val fig5_rho_shape : ?points:int -> unit -> Report.Compare.entry list
(** Fig 5: stricter bounds force higher first speeds; the two-speed
    energy never exceeds the one-speed energy. *)

val fig7_pio_invariance : ?points:int -> unit -> Report.Compare.entry list
(** Fig 7: the optimal speeds do not move with Pio (Atlas/Crusoe);
    the energy overhead and pattern size grow. *)

val fig11_pio_sensitivity : ?points:int -> unit -> Report.Compare.entry list
(** Section 4.3.4: on Coastal SSD/XScale — large C, small kappa — Pio
    *does* move the optimal pair, unlike Fig 7. *)

val crusoe_c_insensitivity : ?points:int -> unit -> Report.Compare.entry list
(** Section 4.3.4: with Crusoe on the platforms with smaller error
    rates than Atlas (Hera, Coastal, Coastal SSD), the pair stays
    (0.45, 0.45) across the whole C sweep. *)

val all : ?points:int -> unit -> Report.Compare.entry list
(** Every claim above, concatenated. *)
