(** Definitions of the paper's Figures 2-14.

    Figures 2-7 each sweep one parameter for Atlas/Crusoe; Figures 8-14
    sweep all six parameters for the remaining seven configurations.
    Each panel is a {!Sweep.Series.t} carrying both the two-speed and
    single-speed optima per sample — the paper's three sub-plots
    (speeds, Wopt, energy overhead) are projections of it. *)

type t = {
  id : int;  (** Paper figure number, 2-14. *)
  config : string;  (** "Platform/Processor" name. *)
  parameters : Sweep.Parameter.t list;  (** Swept axes, paper order. *)
  lambda_hi : float;
      (** Upper end of the lambda axis: 1e-2 for Hera/Atlas figures,
          1e-3 for the Coastal ones (whose feasible range is narrower). *)
}

val all : t list
(** Figures 2 through 14 as laid out in the paper. *)

val find : int -> t option
(** Look a figure up by paper number. *)

val env_of : t -> Core.Env.t
(** Environment of the figure's configuration (paper defaults). *)

val run : ?points:int -> t -> Sweep.Series.t list
(** Compute every panel of the figure (one series per parameter), at
    the paper's default bound rho = 3. [points] trades resolution for
    speed (default: the paper grids of
    {!Sweep.Parameter.paper_axis}). *)

val run_panel : ?points:int -> t -> Sweep.Parameter.t -> Sweep.Series.t
(** One panel only.
    @raise Invalid_argument if the figure does not sweep that
    parameter. *)
