type meneses_row = {
  config : string;
  sigma : float;
  w_time : float;
  w_energy : float;
  penalty : float;
}

let best_single_speed env ~rho =
  Option.map
    (fun (r : Core.Bicrit.result) -> r.best.Core.Optimum.sigma1)
    (Core.Bicrit.solve ~mode:Core.Bicrit.Single_speed env ~rho)

let meneses ?(rho = 3.) () =
  List.filter_map
    (fun config ->
      let env = Core.Env.of_config config in
      match best_single_speed env ~rho with
      | None -> None
      | Some sigma ->
          Some
            {
              config = Platforms.Config.name config;
              sigma;
              w_time = Core.Related_work.time_optimal_period env.params ~sigma;
              w_energy =
                Core.Related_work.energy_optimal_period env.params env.power
                  ~sigma;
              penalty =
                Core.Related_work.period_mismatch_penalty env.params env.power
                  ~sigma;
            })
    Platforms.Config.all

type truncation_row = {
  config : string;
  w : float;
  pattern_risk : float;
  month_risk : float;
  underestimate : float;
}

let month_work = 30. *. 24. *. 3600.

let single_reexecution ?(rho = 3.) () =
  List.filter_map
    (fun config ->
      let env = Core.Env.of_config config in
      match Core.Bicrit.solve env ~rho with
      | None -> None
      | Some { best; _ } ->
          let w = best.Core.Optimum.w_opt in
          let sigma1 = best.Core.Optimum.sigma1 in
          let sigma2 = best.Core.Optimum.sigma2 in
          Some
            {
              config = Platforms.Config.name config;
              w;
              pattern_risk =
                Core.Related_work.Single_reexecution.risk env.params ~w ~sigma1
                  ~sigma2;
              month_risk =
                Core.Related_work.Single_reexecution.application_risk
                  env.params ~w ~sigma1 ~sigma2 ~w_base:month_work;
              underestimate =
                Core.Related_work.Single_reexecution.underestimate env.params
                  ~w ~sigma1 ~sigma2;
            })
    Platforms.Config.all

let render_meneses rows =
  let table =
    Report.Table.create
      ~header:
        [ "configuration"; "sigma"; "W (time-opt)"; "W (energy-opt)";
          "energy penalty of time period" ]
      ()
  in
  List.iter
    (fun (r : meneses_row) ->
      Report.Table.add_row table
        [
          r.config;
          Printf.sprintf "%g" r.sigma;
          Printf.sprintf "%.0f" r.w_time;
          Printf.sprintf "%.0f" r.w_energy;
          Printf.sprintf "%.3f%%" (100. *. r.penalty);
        ])
    rows;
  Report.Table.render table

let render_truncation rows =
  let table =
    Report.Table.create
      ~header:
        [ "configuration"; "Wopt"; "risk/pattern"; "risk/30-day job";
          "E[T] underestimate" ]
      ()
  in
  List.iter
    (fun (r : truncation_row) ->
      Report.Table.add_row table
        [
          r.config;
          Printf.sprintf "%.0f" r.w;
          Printf.sprintf "%.2e" r.pattern_risk;
          Printf.sprintf "%.1f%%" (100. *. r.month_risk);
          Printf.sprintf "%.2e" r.underestimate;
        ])
    rows;
  Report.Table.render table
