type row = { sigma1 : float; best : (float * float * float) option }

type table = {
  rho : float;
  rows : row list;
  best_pair : (float * float) option;
}

(* Section 4.2, Hera/XScale, verbatim. *)
let paper =
  [
    {
      rho = 8.;
      rows =
        [
          { sigma1 = 0.15; best = Some (0.4, 1711., 466.) };
          { sigma1 = 0.4; best = Some (0.4, 2764., 416.) };
          { sigma1 = 0.6; best = Some (0.4, 3639., 674.) };
          { sigma1 = 0.8; best = Some (0.4, 4627., 1082.) };
          { sigma1 = 1.; best = Some (0.4, 5742., 1625.) };
        ];
      best_pair = Some (0.4, 0.4);
    };
    {
      rho = 3.;
      rows =
        [
          { sigma1 = 0.15; best = None };
          { sigma1 = 0.4; best = Some (0.4, 2764., 416.) };
          { sigma1 = 0.6; best = Some (0.4, 3639., 674.) };
          { sigma1 = 0.8; best = Some (0.4, 4627., 1082.) };
          { sigma1 = 1.; best = Some (0.4, 5742., 1625.) };
        ];
      best_pair = Some (0.4, 0.4);
    };
    {
      rho = 1.775;
      rows =
        [
          { sigma1 = 0.15; best = None };
          { sigma1 = 0.4; best = None };
          { sigma1 = 0.6; best = Some (0.8, 4251., 690.) };
          { sigma1 = 0.8; best = Some (0.4, 4627., 1082.) };
          { sigma1 = 1.; best = Some (0.4, 5742., 1625.) };
        ];
      best_pair = Some (0.6, 0.8);
    };
    {
      rho = 1.4;
      rows =
        [
          { sigma1 = 0.15; best = None };
          { sigma1 = 0.4; best = None };
          { sigma1 = 0.6; best = None };
          { sigma1 = 0.8; best = Some (0.4, 4627., 1082.) };
          { sigma1 = 1.; best = Some (0.4, 5742., 1625.) };
        ];
      best_pair = Some (0.8, 0.4);
    };
  ]

let compute (env : Core.Env.t) ~rho =
  let rows =
    Array.to_list env.speeds
    |> List.map (fun sigma1 ->
           match Core.Bicrit.best_second_speed env ~rho ~sigma1 with
           | None -> { sigma1; best = None }
           | Some (s : Core.Optimum.solution) ->
               {
                 sigma1;
                 best = Some (s.sigma2, s.w_opt, s.energy_overhead);
               })
  in
  let best_pair =
    Option.map
      (fun (r : Core.Bicrit.result) ->
        (r.best.Core.Optimum.sigma1, r.best.Core.Optimum.sigma2))
      (Core.Bicrit.solve env ~rho)
  in
  { rho; rows; best_pair }

let compare env (reference : table) =
  let measured = compute env ~rho:reference.rho in
  let experiment = Printf.sprintf "Table rho=%g" reference.rho in
  let row_entries (expected : row) (got : row) =
    let metric fmt = Printf.sprintf fmt expected.sigma1 in
    match (expected.best, got.best) with
    | None, None ->
        [
          Report.Compare.entry ~experiment
            ~metric:(metric "feasible(s1=%g)")
            ~paper:"infeasible" ~measured:"infeasible"
            ~verdict:Report.Compare.Exact;
        ]
    | Some (s2, w, e), Some (s2', w', e') ->
        [
          Report.Compare.entry ~experiment
            ~metric:(metric "best s2(s1=%g)")
            ~paper:(Printf.sprintf "%g" s2)
            ~measured:(Printf.sprintf "%g" s2')
            ~verdict:
              (if s2 = s2' then Report.Compare.Exact
               else Report.Compare.Deviates "different speed");
          Report.Compare.numeric ~experiment
            ~metric:(metric "Wopt(s1=%g)")
            ~paper:w ~measured:w' ();
          Report.Compare.numeric ~experiment
            ~metric:(metric "E/W(s1=%g)")
            ~paper:e ~measured:e' ();
        ]
    | None, Some _ ->
        [
          Report.Compare.entry ~experiment
            ~metric:(metric "feasible(s1=%g)")
            ~paper:"infeasible" ~measured:"feasible"
            ~verdict:(Report.Compare.Deviates "feasibility flipped");
        ]
    | Some _, None ->
        [
          Report.Compare.entry ~experiment
            ~metric:(metric "feasible(s1=%g)")
            ~paper:"feasible" ~measured:"infeasible"
            ~verdict:(Report.Compare.Deviates "feasibility flipped");
        ]
  in
  let pair_entry =
    let show = function
      | Some (a, b) -> Printf.sprintf "(%g, %g)" a b
      | None -> "none"
    in
    Report.Compare.entry ~experiment ~metric:"best pair"
      ~paper:(show reference.best_pair)
      ~measured:(show measured.best_pair)
      ~verdict:
        (if reference.best_pair = measured.best_pair then Report.Compare.Exact
         else Report.Compare.Deviates "different winning pair")
  in
  pair_entry
  :: List.concat (List.map2 row_entries reference.rows measured.rows)

let render t =
  let table =
    Report.Table.create
      ~header:[ "sigma1"; "best sigma2"; "Wopt"; "E(Wopt)/Wopt" ]
      ()
  in
  List.iter
    (fun row ->
      match row.best with
      | None ->
          Report.Table.add_row table
            [ Printf.sprintf "%g" row.sigma1; "-"; "-"; "-" ]
      | Some (s2, w, e) ->
          Report.Table.add_row table
            [
              Printf.sprintf "%g" row.sigma1;
              Printf.sprintf "%g" s2;
              Printf.sprintf "%.0f" w;
              Printf.sprintf "%.0f" e;
            ])
    t.rows;
  let pair =
    match t.best_pair with
    | Some (a, b) -> Printf.sprintf "best pair: (%g, %g)" a b
    | None -> "no feasible pair"
  in
  Printf.sprintf "rho = %g\n%s%s\n" t.rho (Report.Table.render table) pair
