(** Experiments for the beyond-the-paper extensions (Section 7 future
    work): the general mixed-error BiCrit and multi-verification
    patterns. *)

type mixed_point = {
  fraction : float;  (** Fail-stop fraction f of the total rate. *)
  solution : Core.Mixed_bicrit.solution option;
  single_speed : Core.Mixed_bicrit.solution option;
}

val fraction_sweep :
  ?config:string -> ?rho:float -> ?fractions:float list -> unit ->
  mixed_point list
(** Solve the exact mixed-error BiCrit along the error-mix axis
    f in [0, 1] (default 11 points) for a configuration (default
    Hera/XScale at rho = 3): how the optimal pair and period move as
    errors shift from all-silent to all-fail-stop. *)

val silent_limit_matches_closed_form :
  ?config:string -> ?rho:float -> unit -> float
(** Consistency anchor: at f = 0 the numeric exact solver must agree
    with the paper's first-order closed form. Returns the relative gap
    of the two energy overheads (expected < 1e-2). *)

val coverage_beyond_validity :
  ?config:string -> ?rho:float -> fraction:float -> unit -> int * int
(** [(solved, invalid)] — among the speed pairs whose ratio
    [sigma2/sigma1] falls OUTSIDE the paper's first-order validity
    window for this error mix, how many the exact numeric solver still
    solves. Demonstrates the extension covers the regime the paper
    could not. *)

type verif_point = {
  verifications : int;
  solution : Core.Multi_verif.solution option;
}

val verification_sweep :
  ?config:string -> ?rho:float -> ?lambda_scale:float ->
  ?max_verifications:int -> unit -> verif_point list
(** Energy-optimal pattern per verification count m = 1 ..
    max_verifications (default 8), with the configuration's error rate
    optionally inflated ([lambda_scale], default 100 — intermediate
    verifications only pay off when errors are frequent relative to V). *)

val best_verification_count :
  ?config:string -> ?rho:float -> ?lambda_scale:float ->
  ?max_verifications:int -> unit -> int
(** The m minimizing the energy overhead in {!verification_sweep}. *)
