(** Ablation studies for the design choices DESIGN.md calls out.

    Three questions the paper's design raises but does not quantify:

    - how much energy does the *discrete* speed ladder leave on the
      table versus continuous DVFS?
    - how much does the *first-order* optimizer lose versus numerically
      optimizing the exact model?
    - how much of the overhead is the *verification* itself (V -> 0
      counterfactual)?

    Each ablation runs over the eight paper configurations and returns
    rows suitable for tables plus a one-line summary. *)

type row = {
  config : string;
  baseline : float;  (** Energy overhead of the paper's design, mW. *)
  ablated : float;  (** Energy overhead with the choice ablated. *)
  gap : float;  (** (baseline - ablated) / ablated — the price of the
                    design choice; ~0 means the choice is free. *)
}

val discrete_ladder : ?rho:float -> unit -> row list
(** Discrete Table-2 ladder vs continuous DVFS on the same range. *)

val first_order_optimizer : ?rho:float -> unit -> row list
(** First-order Wopt evaluated on the exact model vs the numerically
    exact optimum (silent errors; same discrete best pair). Gap is the
    exact-energy excess of using the paper's closed-form period. *)

val verification_cost : ?rho:float -> unit -> row list
(** Paper's V vs the free-verification counterfactual (V = 0):
    how much of the energy overhead verification is responsible for. *)

val summarize : row list -> float
(** Largest gap across configurations. *)

val render : title:string -> row list -> string
(** ASCII table of an ablation. *)
