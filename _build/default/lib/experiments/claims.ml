let entry = Report.Compare.entry
let exact = Report.Compare.Exact
let shape s = Report.Compare.Shape s
let deviates s = Report.Compare.Deviates s

let panel ?points id parameter =
  match Figures.find id with
  | Some f -> Figures.run_panel ?points f parameter
  | None -> invalid_arg "Claims: unknown figure"

let pair_steps series =
  ( Sweep.Shape.step_values
      (Sweep.Shape.project series Sweep.Shape.two_speed_sigma1),
    Sweep.Shape.step_values
      (Sweep.Shape.project series Sweep.Shape.two_speed_sigma2) )

let show_steps steps =
  "[" ^ String.concat "; " (List.map (Printf.sprintf "%g") steps) ^ "]"

let last_pair (series : Sweep.Series.t) =
  match List.rev series.points with
  | { two_speed = Some best; _ } :: _ ->
      Some (best.Core.Optimum.sigma1, best.Core.Optimum.sigma2)
  | { two_speed = None; _ } :: _ | [] -> None

let show_pair = function
  | Some (a, b) -> Printf.sprintf "(%g, %g)" a b
  | None -> "infeasible"

let headline_saving ?points () =
  let saving_c = Sweep.Series.max_saving (panel ?points 2 Sweep.Parameter.C) in
  let saving_v = Sweep.Series.max_saving (panel ?points 3 Sweep.Parameter.V) in
  let best = Float.max saving_c saving_v in
  [
    entry ~experiment:"Headline (4.3.5)" ~metric:"max two-speed saving"
      ~paper:"up to 35%"
      ~measured:(Printf.sprintf "%.1f%% (C sweep %.1f%%, V sweep %.1f%%)"
                   (100. *. best) (100. *. saving_c) (100. *. saving_v))
      ~verdict:
        (if best >= 0.30 && best <= 0.40 then shape "saving in the 30-40% band"
         else deviates "saving outside the 30-40% band");
  ]

let fig2_pair_motion ?points () =
  let series = panel ?points 2 Sweep.Parameter.C in
  let s1_steps, s2_steps = pair_steps series in
  [
    entry ~experiment:"Fig 2" ~metric:"sigma1 along C" ~paper:"constant 0.45"
      ~measured:(show_steps s1_steps)
      ~verdict:
        (if s1_steps = [ 0.45 ] then exact
         else deviates "sigma1 moved along the C sweep");
    entry ~experiment:"Fig 2" ~metric:"sigma2 along C"
      ~paper:"0.45 rising to 0.8 at C=5000"
      ~measured:(show_steps s2_steps)
      ~verdict:
        (match (s2_steps, List.rev s2_steps) with
        | 0.45 :: _, 0.8 :: _ ->
            if Sweep.Shape.nondecreasing (List.mapi (fun i v -> (float_of_int i, v)) s2_steps)
            then exact
            else deviates "sigma2 not monotone"
        | _ -> deviates "endpoints differ");
  ]

let fig3_stabilizes ?points () =
  let series = panel ?points 3 Sweep.Parameter.V in
  let final = last_pair series in
  [
    entry ~experiment:"Fig 3" ~metric:"pair at V=5000" ~paper:"(0.6, 0.45)"
      ~measured:(show_pair final)
      ~verdict:
        (if final = Some (0.6, 0.45) then exact
         else deviates "different stabilized pair");
  ]

let fig4_lambda_shape ?points () =
  let series = panel ?points 4 Sweep.Parameter.Lambda in
  let wopt = Sweep.Shape.project series Sweep.Shape.two_speed_wopt in
  let s1 = Sweep.Shape.project series Sweep.Shape.two_speed_sigma1 in
  let s2 = Sweep.Shape.project series Sweep.Shape.two_speed_sigma2 in
  let top = function
    | [] -> None
    | pts -> Some (snd (List.nth pts (List.length pts - 1)))
  in
  (* Wopt is sawtoothed by the discrete speed switches (visible in the
     paper's plot too); the reproducible shape is the order-of-magnitude
     collapse between the ends of the feasible range. *)
  let collapse =
    match (wopt, top wopt) with
    | (_, first) :: _, Some last when first > 0. -> last /. first
    | ([] | _ :: _), (Some _ | None) -> nan
  in
  [
    entry ~experiment:"Fig 4" ~metric:"Wopt vs lambda"
      ~paper:"collapses as errors become frequent"
      ~measured:(Printf.sprintf "Wopt(end)/Wopt(start) = %.3f" collapse)
      ~verdict:
        (if Float.is_finite collapse && collapse < 0.2 then
           shape "Wopt shrinks by >5x across the lambda range"
         else deviates "Wopt did not collapse with lambda");
    entry ~experiment:"Fig 4" ~metric:"speeds vs lambda"
      ~paper:"ramp up (sigma2 first, sigma1 monotone to 1)"
      ~measured:
        (Printf.sprintf "sigma1 -> %s (monotone: %b), sigma2 -> %s"
           (Option.fold ~none:"-" ~some:(Printf.sprintf "%g") (top s1))
           (Sweep.Shape.nondecreasing s1)
           (Option.fold ~none:"-" ~some:(Printf.sprintf "%g") (top s2)))
      ~verdict:
        (if
           Sweep.Shape.nondecreasing s1
           && top s1 = Some 1.
           && (match top s2 with Some v -> v >= 0.8 | None -> false)
         then shape "sigma1 ramps monotonically to 1; sigma2 ends high"
         else deviates "speeds do not ramp up with lambda");
  ]

let fig5_rho_shape ?points () =
  let series = panel ?points 5 Sweep.Parameter.Rho in
  let s1 = Sweep.Shape.project series Sweep.Shape.two_speed_sigma1 in
  let two = Sweep.Shape.project series Sweep.Shape.two_speed_energy in
  let one = Sweep.Shape.project series Sweep.Shape.single_speed_energy in
  [
    entry ~experiment:"Fig 5" ~metric:"sigma1 vs rho"
      ~paper:"higher speeds under stricter bounds"
      ~measured:(show_steps (Sweep.Shape.step_values s1))
      ~verdict:
        (if Sweep.Shape.nonincreasing ~rtol:1e-9 s1 then
           shape "sigma1 falls as rho relaxes"
         else deviates "sigma1 not monotone in rho");
    entry ~experiment:"Fig 5" ~metric:"two-speed vs one-speed energy"
      ~paper:"two speeds never worse"
      ~measured:(if Sweep.Shape.never_above two one then "never above" else "crosses above")
      ~verdict:
        (if Sweep.Shape.never_above two one then shape "dominance holds"
         else deviates "single speed beat two speeds somewhere");
  ]

let fig7_pio_invariance ?points () =
  let series = panel ?points 7 Sweep.Parameter.P_io in
  let s1_steps, s2_steps = pair_steps series in
  let energy = Sweep.Shape.project series Sweep.Shape.two_speed_energy in
  let wopt = Sweep.Shape.project series Sweep.Shape.two_speed_wopt in
  [
    entry ~experiment:"Fig 7" ~metric:"speeds vs Pio" ~paper:"unaffected"
      ~measured:
        (Printf.sprintf "sigma1 %s, sigma2 %s" (show_steps s1_steps)
           (show_steps s2_steps))
      ~verdict:
        (if List.length s1_steps = 1 && List.length s2_steps = 1 then exact
         else deviates "speeds moved with Pio");
    entry ~experiment:"Fig 7" ~metric:"overhead and Wopt vs Pio"
      ~paper:"both increase"
      ~measured:
        (Printf.sprintf "energy %s, Wopt %s"
           (if Sweep.Shape.nondecreasing energy then "nondecreasing" else "non-monotone")
           (if Sweep.Shape.nondecreasing wopt then "nondecreasing" else "non-monotone"))
      ~verdict:
        (if Sweep.Shape.nondecreasing energy && Sweep.Shape.nondecreasing wopt
         then shape "both grow with Pio"
         else deviates "expected growth missing");
  ]

let fig11_pio_sensitivity ?points () =
  let series = panel ?points 11 Sweep.Parameter.P_io in
  let s1_steps, s2_steps = pair_steps series in
  let moved = List.length s1_steps > 1 || List.length s2_steps > 1 in
  [
    entry ~experiment:"Fig 11 (4.3.4)" ~metric:"speeds vs Pio on Coastal SSD/XScale"
      ~paper:"Pio does affect the optimal pair"
      ~measured:
        (Printf.sprintf "sigma1 %s, sigma2 %s" (show_steps s1_steps)
           (show_steps s2_steps))
      ~verdict:
        (if moved then shape "pair moves with Pio on this configuration"
         else deviates "pair did not move");
  ]

let crusoe_c_insensitivity ?points () =
  List.map
    (fun id ->
      let series = panel ?points id Sweep.Parameter.C in
      let s1_steps, s2_steps = pair_steps series in
      let constant = s1_steps = [ 0.45 ] && s2_steps = [ 0.45 ] in
      entry
        ~experiment:(Printf.sprintf "Fig %d (4.3.4)" id)
        ~metric:"pair along C"
        ~paper:"(0.45, 0.45) for the whole sweep"
        ~measured:
          (Printf.sprintf "sigma1 %s, sigma2 %s" (show_steps s1_steps)
             (show_steps s2_steps))
        ~verdict:
          (if constant then exact else deviates "pair moved along C"))
    [ 12; 13; 14 ]

let all ?points () =
  List.concat
    [
      headline_saving ?points ();
      fig2_pair_motion ?points ();
      fig3_stabilizes ?points ();
      fig4_lambda_shape ?points ();
      fig5_rho_shape ?points ();
      fig7_pio_invariance ?points ();
      fig11_pio_sensitivity ?points ();
      crusoe_c_insensitivity ?points ();
    ]
