lib/experiments/validation.ml: Array Core List Platforms Sim
