lib/experiments/figures.ml: Core List Platforms Printf Sweep
