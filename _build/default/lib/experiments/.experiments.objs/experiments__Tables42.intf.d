lib/experiments/tables42.mli: Core Report
