lib/experiments/claims.mli: Report
