lib/experiments/ablations.mli:
