lib/experiments/extensions.ml: Array Core List Numerics Option Platforms
