lib/experiments/theorem2.mli:
