lib/experiments/extensions.mli: Core
