lib/experiments/claims.ml: Core Figures Float List Option Printf Report String Sweep
