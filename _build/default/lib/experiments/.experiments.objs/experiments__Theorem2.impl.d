lib/experiments/theorem2.ml: Core Float List Numerics
