lib/experiments/baselines.ml: Core List Option Platforms Printf Report
