lib/experiments/baselines.mli:
