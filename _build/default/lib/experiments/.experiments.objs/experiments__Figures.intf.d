lib/experiments/figures.mli: Core Sweep
