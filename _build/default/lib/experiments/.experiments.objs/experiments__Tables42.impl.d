lib/experiments/tables42.ml: Array Core List Option Printf Report
