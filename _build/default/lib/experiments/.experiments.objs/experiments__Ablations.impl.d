lib/experiments/ablations.ml: Array Core Float List Option Platforms Printf Report
