lib/experiments/validation.mli: Core Platforms Sim
