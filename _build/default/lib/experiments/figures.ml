type t = {
  id : int;
  config : string;
  parameters : Sweep.Parameter.t list;
  lambda_hi : float;
}

let atlas_crusoe_panel id parameter =
  { id; config = "Atlas/Crusoe"; parameters = [ parameter ]; lambda_hi = 1e-2 }

let full id config lambda_hi =
  { id; config; parameters = Sweep.Parameter.all; lambda_hi }

let all =
  [
    atlas_crusoe_panel 2 Sweep.Parameter.C;
    atlas_crusoe_panel 3 Sweep.Parameter.V;
    atlas_crusoe_panel 4 Sweep.Parameter.Lambda;
    atlas_crusoe_panel 5 Sweep.Parameter.Rho;
    atlas_crusoe_panel 6 Sweep.Parameter.P_idle;
    atlas_crusoe_panel 7 Sweep.Parameter.P_io;
    full 8 "Hera/XScale" 1e-2;
    full 9 "Atlas/XScale" 1e-2;
    full 10 "Coastal/XScale" 1e-3;
    full 11 "Coastal SSD/XScale" 1e-3;
    full 12 "Hera/Crusoe" 1e-2;
    full 13 "Coastal/Crusoe" 1e-3;
    full 14 "Coastal SSD/Crusoe" 1e-3;
  ]

let find id = List.find_opt (fun f -> f.id = id) all

let env_of t =
  match Platforms.Config.find t.config with
  | Some config -> Core.Env.of_config config
  | None -> invalid_arg ("Figures.env_of: unknown configuration " ^ t.config)

let run_panel ?points t parameter =
  if not (List.mem parameter t.parameters) then
    invalid_arg
      (Printf.sprintf "Figures.run_panel: figure %d has no %s panel" t.id
         (Sweep.Parameter.name parameter));
  let xs =
    Sweep.Parameter.paper_axis parameter ~lambda_hi:t.lambda_hi ?points ()
  in
  Sweep.Series.run ~label:t.config ~env:(env_of t)
    ~rho:Platforms.Config.default_rho ~parameter ~xs ()

let run ?points t = List.map (run_panel ?points t) t.parameters
