type row = {
  config : string;
  baseline : float;
  ablated : float;
  gap : float;
}

let row ~config ~baseline ~ablated =
  { config; baseline; ablated; gap = (baseline -. ablated) /. ablated }

let over_configs f =
  List.filter_map
    (fun config ->
      let env = Core.Env.of_config config in
      f (Platforms.Config.name config) env)
    Platforms.Config.all

let discrete_ladder ?(rho = 3.) () =
  over_configs (fun name env ->
      match
        ( Core.Bicrit.solve env ~rho,
          Core.Continuous.solve
            ~bounds:(env.speeds.(0), env.speeds.(Array.length env.speeds - 1))
            env.params env.power ~rho )
      with
      | Some discrete, Some continuous ->
          Some
            (row ~config:name
               ~baseline:discrete.best.Core.Optimum.energy_overhead
               ~ablated:continuous.inner.Core.Optimum.energy_overhead)
      | None, _ | _, None -> None)

let first_order_optimizer ?(rho = 3.) () =
  over_configs (fun name env ->
      match Core.Bicrit.solve env ~rho with
      | None -> None
      | Some { best; _ } ->
          let sigma1 = best.Core.Optimum.sigma1 in
          let sigma2 = best.Core.Optimum.sigma2 in
          (* Exact energy of the first-order period... *)
          let baseline =
            Core.Exact.energy_overhead env.params env.power
              ~w:best.Core.Optimum.w_opt ~sigma1 ~sigma2
          in
          (* ...vs the numerically exact optimum on the same pair,
             constrained by the exact time bound. *)
          let m = Core.Mixed.of_params env.params ~fail_stop_fraction:0. in
          Option.map
            (fun (s : Core.Mixed_bicrit.solution) ->
              row ~config:name ~baseline ~ablated:s.energy_overhead)
            (Core.Mixed_bicrit.solve_pair m env.power ~rho ~sigma1 ~sigma2))

let verification_cost ?(rho = 3.) () =
  over_configs (fun name env ->
      let free = Core.Env.with_v env 0. in
      match (Core.Bicrit.solve env ~rho, Core.Bicrit.solve free ~rho) with
      | Some with_v, Some without_v ->
          Some
            (row ~config:name
               ~baseline:with_v.best.Core.Optimum.energy_overhead
               ~ablated:without_v.best.Core.Optimum.energy_overhead)
      | None, _ | _, None -> None)

let summarize rows = List.fold_left (fun acc r -> Float.max acc r.gap) 0. rows

let render ~title rows =
  let table =
    Report.Table.create
      ~header:[ "configuration"; "baseline E/W"; "ablated E/W"; "gap" ]
      ()
  in
  List.iter
    (fun r ->
      Report.Table.add_row table
        [
          r.config;
          Printf.sprintf "%.2f" r.baseline;
          Printf.sprintf "%.2f" r.ablated;
          Printf.sprintf "%+.3f%%" (100. *. r.gap);
        ])
    rows;
  title ^ "\n" ^ Report.Table.render table
