(** SplitMix64 pseudo-random generator (Steele, Lea & Flood 2014).

    A tiny, statistically solid 64-bit generator whose primary role here
    is seeding: expanding one user seed into the 256-bit state that
    {!Xoshiro256} requires, and deriving independent per-replica seeds
    for Monte-Carlo runs. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] builds a generator from any 64-bit seed (all seeds,
    including 0L, are valid). *)

val next : t -> int64
(** Next raw 64-bit output; advances the state. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of
    the parent's subsequent outputs (gamma-less approximation: the
    child is seeded from the parent's next output). *)

val copy : t -> t
(** Snapshot of the current state; the copy evolves independently. *)
