type t = { gen : Xoshiro256.t }

let create ~seed = { gen = Xoshiro256.of_seed (Int64.of_int seed) }
let of_xoshiro gen = { gen }

let split t n =
  if n < 0 then invalid_arg "Rng.split: negative count";
  Array.init n (fun _ ->
      let child = Xoshiro256.copy t.gen in
      Xoshiro256.jump t.gen;
      { gen = child })

(* Top 53 bits scaled by 2^-53: the standard unbiased (0,1) mapping. *)
let float t =
  let bits = Int64.shift_right_logical (Xoshiro256.next t.gen) 11 in
  Int64.to_float bits *. 0x1.0p-53

let uniform t ~lo ~hi =
  if lo >= hi then invalid_arg "Rng.uniform: empty interval";
  lo +. ((hi -. lo) *. float t)

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate <= 0";
  (* u in [0,1) so 1-u in (0,1]; log1p (-u) = log (1-u) without the
     catastrophic cancellation of log near 1. *)
  let u = float t in
  -.Float.log1p (-.u) /. rate

let bernoulli t ~p =
  if p < 0. || p > 1. then invalid_arg "Rng.bernoulli: p outside [0, 1]";
  float t < p

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  let bound64 = Int64.of_int bound in
  (* Rejection sampling on the top bits of the 63-bit non-negative
     range removes modulo bias. *)
  let rec draw () =
    let raw = Int64.shift_right_logical (Xoshiro256.next t.gen) 1 in
    let limit = Int64.sub Int64.max_int (Int64.rem Int64.max_int bound64) in
    if raw >= limit then draw () else Int64.to_int (Int64.rem raw bound64)
  in
  draw ()

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t ~bound:(Array.length a))
