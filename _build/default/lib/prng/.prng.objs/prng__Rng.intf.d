lib/prng/rng.mli: Xoshiro256
