(** xoshiro256** generator (Blackman & Vigna 2018).

    The workhorse generator of the simulation substrate: 256-bit state,
    period 2^256 - 1, and a [jump] function advancing 2^128 steps so
    that replicas can draw from provably non-overlapping subsequences. *)

type t
(** Mutable generator state. *)

val of_seed : int64 -> t
(** [of_seed seed] initializes the 256-bit state from [seed] via
    SplitMix64, the initialization the authors recommend. *)

val of_state : int64 * int64 * int64 * int64 -> t
(** Build a generator from an explicit state.
    @raise Invalid_argument if the state is all zeros (the one
    forbidden state). *)

val next : t -> int64
(** Next raw 64-bit output; advances the state. *)

val jump : t -> unit
(** Advance the state by 2^128 steps in O(1) word operations. *)

val copy : t -> t
(** Snapshot of the current state. *)

val state : t -> int64 * int64 * int64 * int64
(** Current state words (for serialization in traces). *)
